"""Interference detection from application latency feedback (§V-A, §VI-C).

The paper defines interference as a positive change in I/O latency
perceived by a VM.  ResEx's direct detection channel is the in-VM
agent's latency reports: the detector compares the recent window's mean
and standard deviation against the application's SLA baseline and
returns the percentage increase when it exceeds the allowed margin
(the "SLA guarantee" of Algorithm 2, line 6).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Sequence

import numpy as np

from repro.errors import PricingError


@dataclass(frozen=True)
class LatencySLA:
    """The service-level agreement of one latency-sensitive VM."""

    #: Expected (uncontended) mean latency in microseconds.
    base_mean_us: float
    #: Expected latency standard deviation in microseconds.
    base_std_us: float = 0.0
    #: Allowed mean increase (percent of base mean) before a violation.
    threshold_pct: float = 10.0
    #: Allowed jitter increase (percent of base mean) before a
    #: violation.  Looser than the mean threshold by default: once an
    #: interferer is throttled, rare residual collisions keep the
    #: window's stddev elevated long after the mean has recovered, and
    #: an aggressive jitter trigger would pin the congestion price at
    #: its maximum forever.
    jitter_threshold_pct: float = 25.0

    def __post_init__(self) -> None:
        if self.base_mean_us <= 0:
            raise PricingError("base_mean_us must be positive")
        if self.base_std_us < 0:
            raise PricingError("base_std_us must be >= 0")
        if self.threshold_pct < 0:
            raise PricingError("threshold_pct must be >= 0")
        if self.jitter_threshold_pct < 0:
            raise PricingError("jitter_threshold_pct must be >= 0")


class InterferenceDetector:
    """Sliding-window detector over one VM's reported latencies."""

    def __init__(self, sla: LatencySLA, window: int = 50) -> None:
        if window < 2:
            raise PricingError("window must hold at least 2 samples")
        self.sla = sla
        self.window = window
        self._samples: Deque[float] = deque(maxlen=window)
        #: Most recent computed increase (for probes/inspection).
        self.last_pct = 0.0

    def add_samples(self, latencies_us: Sequence[float]) -> None:
        self._samples.extend(float(v) for v in latencies_us)

    @property
    def n_samples(self) -> int:
        return len(self._samples)

    def interference_pct(self) -> float:
        """Percent latency degradation beyond the SLA, or 0.0.

        Both the mean and the jitter are checked (Algorithm 2 computes
        "the average and standard deviation ... the percentage increase
        in either"); the larger violation wins.  Increases are expressed
        relative to the base mean so a tiny base stddev cannot produce
        unbounded percentages.
        """
        if len(self._samples) < 2:
            self.last_pct = 0.0
            return 0.0
        arr = np.asarray(self._samples, dtype=np.float64)
        base = self.sla.base_mean_us
        mean_pct = 100.0 * (float(arr.mean()) - base) / base
        std_pct = 100.0 * (float(arr.std()) - self.sla.base_std_us) / base
        violations = []
        if mean_pct > self.sla.threshold_pct:
            violations.append(mean_pct)
        if std_pct > self.sla.jitter_threshold_pct:
            violations.append(std_pct)
        self.last_pct = max(violations) if violations else 0.0
        return self.last_pct

    def reset(self) -> None:
        self._samples.clear()
        self.last_pct = 0.0
