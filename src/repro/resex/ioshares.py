"""IOShares: congestion pricing for lower latency variation (Algorithm 2).

When a managed VM reports latencies violating its SLA, the policy finds
the interfering VM (largest recent MTUsSent), raises that VM's charge
rate by

    r' = IOShare x IntfPercent

where IOShare is the interferer's fraction of all MTUs sent and
IntfPercent the victim's percentage latency degradation, and lowers the
interferer's CPU cap to

    NewCap = 100 x base_rate / (base_rate + accumulated r')
            = 100 / charge_rate

— the congestion-pricing translation of "heavy users pay more" into the
hypervisor's only actuator.  The interferer is also *charged* at the
elevated rate, so its Reso account drains faster and FreeMarket-style
depletion capping kicks in sooner.

When no violation is attributed to a VM, its rate decays exponentially
back toward the base rate — this is the back-off behaviour Fig. 8
demonstrates for the no-interference cases.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import PricingError
from repro.resex.freemarket import FreeMarket
from repro.resex.policy import register_policy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resex.controller import MonitoredVM, ResExController


@register_policy
class IOShares(FreeMarket):
    """The lower-latency-variation pricing scheme."""

    name = "ioshares"

    def __init__(
        self,
        rate_decay: float = 0.90,
        max_rate: float = 100.0,
        congestion_cap_floor: int = 2,
        **freemarket_kwargs,
    ) -> None:
        super().__init__(**freemarket_kwargs)
        if not 0.0 <= rate_decay < 1.0:
            raise PricingError("rate_decay must be in [0, 1)")
        if max_rate < 1.0:
            raise PricingError("max_rate must be >= 1")
        if not 1 <= congestion_cap_floor <= 100:
            raise PricingError("congestion_cap_floor must be in [1, 100]")
        self.rate_decay = rate_decay
        self.max_rate = max_rate
        self.congestion_cap_floor = congestion_cap_floor

    # Algorithm 2 body.
    def on_interval(self, controller: "ResExController") -> None:
        p = controller.reso_params
        # Which VMs get a rate increase this interval (others decay).
        raised = set()

        for vm in controller.vms:
            if vm.detector is None:
                continue
            io_intf_pct = controller.get_io_intf(vm)  # GetIOIntf
            if io_intf_pct <= 0.0:
                continue
            interferer = controller.get_io_intf_vm(vm)  # GetIOIntfVMId
            if interferer is None:
                continue
            io_share = controller.get_io_share(vm, interferer)  # GetIOShare
            if io_share <= 0.0:
                continue
            r_prime = io_share * io_intf_pct  # ChangeIBRate
            interferer.charge_rate = min(
                interferer.charge_rate + r_prime, self.max_rate
            )
            raised.add(interferer.domid)

        for vm in controller.vms:
            if vm.domid not in raised and vm.charge_rate > 1.0:
                vm.charge_rate = 1.0 + (vm.charge_rate - 1.0) * self.rate_decay
                if vm.charge_rate < 1.001:
                    vm.charge_rate = 1.0
            self._charge_and_actuate(controller, vm)

    def _charge_and_actuate(self, controller: "ResExController", vm) -> None:
        """Deduct Resos at the VM's current rate and apply the cap."""
        p = controller.reso_params
        ib_resos = controller.get_mtus(vm) * p.io_resos_per_mtu * vm.charge_rate
        cpu_resos = (
            controller.get_cpu_percent(vm)
            * p.cpu_resos_per_percent
            * vm.charge_rate
        )
        assert vm.account is not None
        vm.account.deduct(ib_resos + cpu_resos)
        controller.set_cap(vm, self._combined_cap(controller, vm))

    def _combined_cap(self, controller: "ResExController", vm: "MonitoredVM") -> int:
        """Congestion cap (100 / rate) combined with the depletion walk."""
        depletion_cap = self._get_cpu_cap(controller, vm)
        if vm.charge_rate <= 1.0:
            return depletion_cap
        congestion_cap = max(
            round(100.0 / vm.charge_rate), self.congestion_cap_floor
        )
        return min(depletion_cap, congestion_cap)

    def on_epoch(self, controller: "ResExController") -> None:
        """Replenish lifts depletion caps; congestion caps persist at
        whatever the current charge rate dictates."""
        for vm in controller.vms:
            if vm.charge_rate > 1.0:
                cap = max(
                    round(100.0 / vm.charge_rate), self.congestion_cap_floor
                )
            else:
                cap = 100
            controller.set_cap(vm, cap)
