"""HwShares: congestion pricing actuated through HCA rate limits.

The paper's §I observes that "newer generation InfiniBand cards allow
controls such as setting a limit on bandwidth for different traffic
flows" — but ResEx deliberately works without them, because commodity
VMM-bypass deployments could not assume such hardware, leaving the CPU
cap as the hypervisor's only lever.

This policy is the counterfactual: identical sensing and pricing to
:class:`~repro.resex.ioshares.IOShares` (agent latencies, IBMon MTU
shares, ``r' = IOShare x IntfPercent``), but the actuation is a
hardware bandwidth limit on the interfering domain's flows:

    limit = link_rate / charge_rate

CPU caps stay at 100.  The ablation bench compares the two actuators:
hardware limiting throttles the *flow* directly, so it achieves the
same victim protection without starving the interferer's CPU — at the
price of requiring hardware the paper's platform did not have.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.resex.ioshares import IOShares
from repro.resex.policy import register_policy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resex.controller import MonitoredVM, ResExController


@register_policy
class HwShares(IOShares):
    """IOShares pricing with hardware rate-limit actuation."""

    name = "hw-shares"

    def __init__(self, min_limit_bytes_per_sec: float = 8e6, **kwargs) -> None:
        super().__init__(**kwargs)
        if min_limit_bytes_per_sec <= 0:
            raise ValueError("min_limit_bytes_per_sec must be > 0")
        self.min_limit = min_limit_bytes_per_sec

    def _combined_cap(self, controller: "ResExController", vm: "MonitoredVM") -> int:
        """Actuate through the HCA instead of the scheduler.

        Purely bandwidth-actuated: Reso accounts still drain (the
        currency is unchanged), but enforcement never touches the CPU —
        the clean counterfactual to the paper's cap-only platform.
        """
        hca = controller.node.hca
        if vm.charge_rate > 1.0:
            link_rate = hca.params.link_bytes_per_sec
            limit = max(link_rate / vm.charge_rate, self.min_limit)
            hca.set_domain_rate_limit(vm.domid, limit)
        else:
            hca.set_domain_rate_limit(vm.domid, None)
        return 100

    def on_epoch(self, controller: "ResExController") -> None:
        for vm in controller.vms:
            controller.set_cap(vm, 100)
            if vm.charge_rate <= 1.0:
                controller.node.hca.set_domain_rate_limit(vm.domid, None)
