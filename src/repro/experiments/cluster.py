"""Cluster-scale scenarios: hundreds of hosts on a routed fabric.

The paper's platform is two hosts on a crossbar; ROADMAP item 1 grows
it to a cluster.  A cluster scenario wires a :class:`~repro.hw.
topology.Topology` (leaf-spine or fat-tree) under the standard
:class:`~repro.experiments.platform.Testbed`, populates every host
with guest VMs, and layers three kinds of activity on top:

* **Monitored application traffic** — the paper's BenchEx pairs on the
  first racks' head nodes: a latency-reporting pair plus a
  larger-buffer interfering pair, both crossing the spine, observed by
  a full ResEx controller (IBMon, Reso accounts, IOShares pricing).
* **Per-rack ResEx controllers** — rack 0 runs the detecting
  :class:`~repro.resex.IOShares` policy; every other rack runs
  :class:`~repro.resex.RackFollower`, applying the cluster-wide price.
  A :class:`~repro.resex.ClusterFederation` gossips prices between the
  rack heads **over the simulated fabric** (§ federation docstring).
* **Background flows** — a seeded population of VM-to-VM transfers
  (default 70 % intra-rack) submitted directly to the fluid fabric
  along topology routes.  They are the cluster's bulk traffic: they
  contend on leaf uplinks and host ports and exercise the vectorized
  max-min solver at realistic transfer counts.

Background flows deliberately bypass the per-VM virtio/HCA stack — at
256 hosts the full split-driver path per flow would dominate runtime
without changing what the fabric layer is being asked to prove
(routing, contention, component-local reallocation).  The monitored
pairs keep the full stack honest; the flows keep the fabric busy.

Everything is deterministic: flow endpoints, sizes and start times
come from named :class:`~repro.sim.rng.RngRegistry` streams, routing
is static, and the max-min solver is bit-identical across solver
paths, so a cluster run's metrics are reproducible cell-for-cell
under the sweep engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.benchex import BenchExConfig, BenchExPair
from repro.errors import ConfigError
from repro.experiments.platform import Node, Testbed
from repro.experiments.scenarios import REPORTING_SLA
from repro.hw.fabric import FluidFabric
from repro.hw.host import path_between
from repro.hw.topology import FatTree, LeafSpine, Topology
from repro.resex import ClusterFederation, IOShares, RackFollower, ResExController
from repro.units import KiB, MS, MiB, SEC

#: Topology kinds a :class:`ClusterSpec` understands.
TOPOLOGY_KINDS = ("leaf-spine", "fat-tree")


@dataclass(frozen=True)
class ClusterSpec:
    """One cluster configuration: wiring, population and traffic."""

    name: str
    #: ``"leaf-spine"`` or ``"fat-tree"``.
    topology: str = "leaf-spine"
    #: Leaf-spine shape (ignored for fat-tree).
    racks: int = 4
    hosts_per_rack: int = 4
    spines: int = 2
    #: Fat-tree arity (ignored for leaf-spine); hosts = k^3/4.
    fat_tree_k: int = 4
    #: Guest VMs created per host (the flow-endpoint population).
    vms_per_host: int = 4
    #: Background VM-to-VM flows over the whole run.
    n_flows: int = 200
    #: Fraction of flows whose endpoints share a rack.
    intra_rack_frac: float = 0.7
    #: Flow sizes are log-uniform over [min, max].
    flow_bytes_min: int = 64 * KiB
    flow_bytes_max: int = 2 * MiB
    #: Simulated duration.
    sim_s: float = 0.1
    #: Price-gossip cadence of the cluster federation.
    sync_interval_ns: int = 2 * MS
    #: Deploy the monitored BenchEx pairs + ResEx controllers.
    with_resex: bool = True

    def __post_init__(self) -> None:
        if self.topology not in TOPOLOGY_KINDS:
            raise ConfigError(
                f"unknown topology {self.topology!r} (have {TOPOLOGY_KINDS})"
            )
        if self.vms_per_host < 1:
            raise ConfigError("vms_per_host must be >= 1")
        if self.n_flows < 0:
            raise ConfigError("n_flows must be >= 0")
        if not 0.0 <= self.intra_rack_frac <= 1.0:
            raise ConfigError("intra_rack_frac must be within [0, 1]")
        if not 0 < self.flow_bytes_min <= self.flow_bytes_max:
            raise ConfigError("need 0 < flow_bytes_min <= flow_bytes_max")
        if self.sim_s <= 0:
            raise ConfigError("sim_s must be > 0")
        if self.topology == "leaf-spine" and self.racks < 2:
            raise ConfigError("a cluster needs at least two racks")

    @property
    def n_racks(self) -> int:
        if self.topology == "fat-tree":
            # The edge switch is the rack: k/2 hosts per edge.
            return self.fat_tree_k * (self.fat_tree_k // 2)
        return self.racks

    @property
    def n_hosts(self) -> int:
        if self.topology == "fat-tree":
            return self.fat_tree_k ** 3 // 4
        return self.racks * self.hosts_per_rack

    @property
    def n_vms(self) -> int:
        return self.n_hosts * self.vms_per_host

    def topology_factory(self) -> Callable[[FluidFabric], Topology]:
        """The :class:`~repro.experiments.platform.Testbed` hook."""
        from repro.ib.params import DEFAULT_FABRIC_PARAMS

        bps = DEFAULT_FABRIC_PARAMS.link_bytes_per_sec
        if self.topology == "fat-tree":
            return lambda fabric: FatTree(fabric, bps, k=self.fat_tree_k)
        return lambda fabric: LeafSpine(
            fabric, bps, racks=self.racks,
            hosts_per_rack=self.hosts_per_rack, spines=self.spines,
        )


#: The registered cluster presets.  ``cluster_scale`` is ROADMAP item
#: 1's headline configuration: 256 hosts / 2048 VMs on a 16x16
#: leaf-spine with 4 spines.  ``cluster_smoke`` is the CI-sized
#: end-to-end check; ``cluster_fat_tree`` exercises the three-stage
#: routing at k=8 (128 hosts).
CLUSTER_SPECS: Dict[str, ClusterSpec] = {
    spec.name: spec
    for spec in (
        ClusterSpec(
            name="cluster_smoke",
            racks=4, hosts_per_rack=4, spines=2,
            vms_per_host=4, n_flows=150, sim_s=0.08,
        ),
        ClusterSpec(
            name="cluster_scale",
            racks=16, hosts_per_rack=16, spines=4,
            vms_per_host=8, n_flows=2000, sim_s=0.25,
        ),
        ClusterSpec(
            name="cluster_fat_tree",
            topology="fat-tree", fat_tree_k=8,
            vms_per_host=8, n_flows=1000, sim_s=0.2,
        ),
    )
}


def cluster_spec(name: str) -> ClusterSpec:
    try:
        return CLUSTER_SPECS[name]
    except KeyError:
        raise ConfigError(
            f"unknown cluster preset {name!r} (try {sorted(CLUSTER_SPECS)})"
        ) from None


@dataclass
class FlowRecord:
    """One completed (or still-running) background flow."""

    label: str
    nbytes: int
    cross_rack: bool
    start_ns: int
    done_ns: Optional[int] = None

    @property
    def latency_us(self) -> Optional[float]:
        if self.done_ns is None:
            return None
        return (self.done_ns - self.start_ns) / 1e3


@dataclass
class ClusterResult:
    """Everything a cluster run produces, with a cacheable projection."""

    spec: ClusterSpec
    seed: int
    sim_time_ns: int
    flows: List[FlowRecord]
    #: Copied from :attr:`FluidFabric.solver_stats` at run end.
    solver_stats: Dict[str, int]
    #: Reporting-VM latencies (us); empty without ResEx pairs.
    reporting_us: np.ndarray
    federation_syncs: int = 0
    federation_price: float = 1.0

    def completed(self) -> List[FlowRecord]:
        return [f for f in self.flows if f.done_ns is not None]

    def metrics(self) -> Dict[str, float]:
        """Float-only metrics — the sweep cache's storable shape."""
        done = self.completed()
        lat = np.array([f.latency_us for f in done], dtype=float)
        cross = [f for f in done if f.cross_rack]
        out: Dict[str, float] = {
            "hosts": float(self.spec.n_hosts),
            "vms": float(self.spec.n_vms),
            "flows_submitted": float(len(self.flows)),
            "flows_completed": float(len(done)),
            "flows_cross_rack": float(len(cross)),
            "flow_bytes_total": float(sum(f.nbytes for f in done)),
            "flow_p50_us": float(np.percentile(lat, 50)) if len(lat) else math.nan,
            "flow_p99_us": float(np.percentile(lat, 99)) if len(lat) else math.nan,
            "federation_syncs": float(self.federation_syncs),
            "federation_price": float(self.federation_price),
            "sim_time_s": self.sim_time_ns / SEC,
        }
        stats = self.solver_stats
        solves = stats["global_solves"] + stats["component_solves"]
        out["solver_global_solves"] = float(stats["global_solves"])
        out["solver_component_solves"] = float(stats["component_solves"])
        out["solver_max_component"] = float(stats["max_component"])
        #: The tentpole's locality evidence: fraction of reallocation
        #: solves that never left their connected component.
        out["solver_component_frac"] = (
            stats["component_solves"] / solves if solves else math.nan
        )
        if len(self.reporting_us):
            out["reporting_p50_us"] = float(np.percentile(self.reporting_us, 50))
            out["reporting_p99_us"] = float(np.percentile(self.reporting_us, 99))
        return out


@dataclass
class ClusterSetup:
    """A fully wired, not-yet-run cluster scenario."""

    spec: ClusterSpec
    seed: int
    bed: Testbed
    #: ``nodes[r][h]`` is host ``h`` of rack ``r``; ``nodes[r][0]`` is
    #: the rack head (controller + federation endpoint).
    nodes: List[List[Node]]
    controllers: List[ResExController] = field(default_factory=list)
    federation: Optional[ClusterFederation] = None
    pairs: List[BenchExPair] = field(default_factory=list)
    reporter: Optional[BenchExPair] = None
    flows: List[FlowRecord] = field(default_factory=list)

    @property
    def rack_heads(self) -> List[Node]:
        return [rack[0] for rack in self.nodes]

    def execute(self, sim_s: Optional[float] = None) -> ClusterResult:
        """Deploy pairs, start flows and the federation, run, collect."""
        spec, bed = self.spec, self.bed
        until_ns = int((sim_s if sim_s is not None else spec.sim_s) * SEC)

        def deploy_all(env):
            for pair in self.pairs:
                yield from pair.deploy()
            for pair in self.pairs:
                pair.start()

        if self.pairs:
            bed.env.process(deploy_all(bed.env), name="cluster-deploy")
        if self.federation is not None:
            self.federation.start()
        self._launch_flows(until_ns)
        bed.env.run(until=until_ns)

        reporting = (
            self.reporter.server.latencies_us()
            if self.reporter is not None and self.reporter.server is not None
            else np.array([])
        )
        return ClusterResult(
            spec=spec,
            seed=self.seed,
            sim_time_ns=bed.env.now,
            flows=self.flows,
            solver_stats=dict(bed.fabric.solver_stats),
            reporting_us=reporting,
            federation_syncs=(
                self.federation.syncs if self.federation is not None else 0
            ),
            federation_price=(
                self.federation.cluster_price
                if self.federation is not None else 1.0
            ),
        )

    # -- background flows ---------------------------------------------------
    def _launch_flows(self, until_ns: int) -> None:
        """Schedule the seeded background flow population.

        Endpoints, sizes and start times all come from one named RNG
        stream, so the flow schedule is a pure function of (seed,
        spec) — independent of deployment interleaving.
        """
        spec, bed = self.spec, self.bed
        if spec.n_flows == 0:
            return
        rng = bed.rng.stream("cluster/flows")
        flat = [node for rack in self.nodes for node in rack]
        racks = self.nodes
        # Flows start inside the first 70% of the run so the tail has
        # room to drain (completions are what the percentiles need).
        horizon = int(until_ns * 0.7)

        for i in range(spec.n_flows):
            src_r = int(rng.integers(len(racks)))
            src_h = int(rng.integers(len(racks[src_r])))
            intra = (
                len(racks[src_r]) > 1
                and float(rng.random()) < spec.intra_rack_frac
            )
            if intra:
                dst_r = src_r
                dst_h = int(rng.integers(len(racks[src_r]) - 1))
                if dst_h >= src_h:
                    dst_h += 1  # never loopback
            else:
                dst_r = int(rng.integers(len(racks) - 1))
                if dst_r >= src_r:
                    dst_r += 1
                dst_h = int(rng.integers(len(racks[dst_r])))
            src, dst = racks[src_r][src_h], racks[dst_r][dst_h]
            nbytes = int(
                math.exp(
                    float(
                        rng.uniform(
                            math.log(spec.flow_bytes_min),
                            math.log(spec.flow_bytes_max),
                        )
                    )
                )
            )
            start_ns = int(rng.integers(horizon)) if horizon > 0 else 0
            sv = int(rng.integers(spec.vms_per_host))
            dv = int(rng.integers(spec.vms_per_host))
            record = FlowRecord(
                label=(
                    f"{src.host.name}.vm{sv}->{dst.host.name}.vm{dv}"
                ),
                nbytes=nbytes,
                cross_rack=src_r != dst_r,
                start_ns=start_ns,
            )
            self.flows.append(record)
            bed.env.process(
                self._flow(record, src, dst), name=f"flow.{i}"
            )
        del flat  # endpoints are rack-indexed; kept for clarity above

    def _flow(self, record: FlowRecord, src: Node, dst: Node):
        env = self.bed.env
        if record.start_ns > 0:
            yield env.timeout(record.start_ns)
        transfer = self.bed.fabric.submit(
            path_between(src.host, dst.host), record.nbytes, record.label
        )
        yield transfer.done
        record.done_ns = env.now


def build_cluster(
    spec: "ClusterSpec | str", seed: int = 7
) -> ClusterSetup:
    """Wire a cluster scenario without advancing simulated time."""
    if isinstance(spec, str):
        spec = cluster_spec(spec)

    bed = Testbed(seed=seed, topology_factory=spec.topology_factory())
    topo = bed.topology
    assert topo is not None

    # Population: hosts in rack-major order (matches the topologies'
    # index -> rack mapping), each with its guest VMs.  Rack heads get
    # spare cores for the monitored pairs' VMs.
    n_racks = spec.n_racks
    hosts_per_rack = spec.n_hosts // n_racks
    nodes: List[List[Node]] = []
    for r in range(n_racks):
        rack: List[Node] = []
        for h in range(hosts_per_rack):
            ncpus = spec.vms_per_host + (4 if h == 0 else 1)
            node = bed.add_node(f"rack{r}-host{h}", ncpus=ncpus)
            for v in range(spec.vms_per_host):
                node.create_guest(f"rack{r}-host{h}.vm{v}")
            rack.append(node)
        nodes.append(rack)

    setup = ClusterSetup(spec=spec, seed=seed, bed=bed, nodes=nodes)
    if not spec.with_resex:
        return setup

    heads = setup.rack_heads
    # The paper's monitored workload, stretched across the spine: the
    # reporting pair serves from rack 0's head to rack 1's head, the
    # interferer from rack 0's head to the last rack's head — so both
    # servers share rack 0's egress port (the §VII contention point).
    reporter = BenchExPair(
        bed, heads[0], heads[1],
        BenchExConfig(name="rep", warmup_requests=50),
        with_agent=True,
    )
    interferer = BenchExPair(
        bed, heads[0], heads[-1],
        BenchExConfig(name="intf", buffer_bytes=2 * MiB),
    )
    setup.pairs = [reporter, interferer]
    setup.reporter = reporter

    # Rack 0 detects (full IOShares); every other rack follows the
    # federated cluster price.
    for r, head in enumerate(heads):
        policy = IOShares() if r == 0 else RackFollower()
        ctl = ResExController(head, policy)
        if r == 0:
            ctl.monitor(reporter.server_dom, agent=reporter.agent,
                        sla=REPORTING_SLA)
            ctl.monitor(interferer.server_dom)
        else:
            # A follower prices whatever its rack hosts; monitor the
            # head's first guest so the controller has a population.
            ctl.monitor(head.hypervisor.guest_domains()[0])
        ctl.start()
        setup.controllers.append(ctl)

    federation = ClusterFederation(
        bed.env, bed.fabric, sync_interval_ns=spec.sync_interval_ns
    )
    for r, ctl in enumerate(setup.controllers):
        federation.register(r, ctl)
    setup.federation = federation
    return setup


def run_cluster(
    spec: "ClusterSpec | str",
    seed: int = 7,
    sim_s: Optional[float] = None,
) -> ClusterResult:
    """Build and run one cluster scenario (the one-call API)."""
    return build_cluster(spec, seed=seed).execute(sim_s)


def scaled_spec(spec: ClusterSpec, sim_s: float) -> ClusterSpec:
    """A copy of ``spec`` running for ``sim_s`` simulated seconds."""
    return replace(spec, sim_s=sim_s)
