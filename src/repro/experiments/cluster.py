"""Cluster-scale scenarios: hundreds of hosts on a partitionable fabric.

The paper's platform is two hosts on a crossbar; ROADMAP item 1 grew it
to a cluster, and ROADMAP item 2 (this module's current shape) makes
one cluster run *partitionable*: the same scenario executes serially or
sharded across worker processes (``shards=``), bit-for-bit identically.

The model is organized around the topology's **domains** (racks for
leaf-spine, pods for fat-tree — see
:class:`~repro.hw.topology.DomainPlan`):

* Every domain owns its own :class:`~repro.hw.fabric.FluidFabric`
  holding its hosts' ports and the switch links the plan assigns it.
  The max-min solver therefore couples flows *within* a domain only —
  in both serial and sharded runs, so partitioning never changes any
  float trajectory.
* Cross-domain traffic is **store-and-forward**: a flow transfers up
  its source-side segment (host port + source-owned switch hops),
  crosses the inter-domain channel as a message carrying the
  propagation latency (``cross_rack_latency_ns`` — the conservative
  lookahead of :mod:`repro.sim.shard`), then transfers down the
  destination-side segment.  Serial runs use the exact same mailbox
  channel at the exact same rack granularity; only the transport under
  the mailbox differs between modes.
* **Monitored application traffic** — the paper's BenchEx pairs live
  entirely inside rack 0 (server on the head node, clients on the next
  hosts), observed by a full ResEx controller (IBMon, Reso accounts,
  IOShares pricing).  The whole virtio/HCA/ResEx stack stays
  domain-local.
* **Per-rack ResEx controllers** — rack 0 runs the detecting
  :class:`~repro.resex.IOShares` policy; every other rack runs
  :class:`~repro.resex.RackFollower`.  Prices federate by *message
  passing*: per-rack :class:`~repro.resex.PriceAgent` endpoints gossip
  with the rack-0 :class:`~repro.resex.PriceCoordinator`, each control
  message paying a real egress transfer on its rack's fabric plus the
  inter-domain propagation latency (gossip rides the same channel the
  flows relay over).
* **Background flows** — a seeded population of VM-to-VM transfers,
  drawn from per-rack RNG streams (``cluster/flows/rack<R>``) so each
  rack's schedule is a pure function of (seed, spec, rack) — never of
  how racks are grouped into shards.
* **Chaos** — optional per-rack link flaps (``chaos_flaps``) drawn
  from ``cluster/chaos/rack<R>`` streams, degrading the rack head's
  egress port; rack-local by construction, so fault campaigns shard
  like everything else.

Background flows deliberately bypass the per-VM virtio/HCA stack — at
256 hosts the full split-driver path per flow would dominate runtime
without changing what the fabric layer is being asked to prove.  The
monitored pairs keep the full stack honest; the flows keep the fabrics
busy.

Determinism contract: every event touches exactly one domain's state;
all cross-domain influence is a :class:`~repro.sim.shard.Message` with
at least the lookahead of latency, delivered in ``(origin, seq)`` order
at the reserved :data:`~repro.sim.events.DELIVERY` priority.  A
domain's trajectory is therefore a pure function of (seed, spec, its
ordered message stream), which is what makes ``shards=1`` and
``shards=N`` byte-identical — the differential suite
(``tests/sim/test_shard_differential.py``) holds this to the digest.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.benchex import BenchExConfig, BenchExPair
from repro.errors import ConfigError
from repro.experiments.platform import Node
from repro.experiments.scenarios import REPORTING_SLA
from repro.hw.fabric import FluidFabric, NetLink
from repro.hw.topology import DomainPlan, FatTreePlan, LeafSpinePlan
from repro.ib.params import DEFAULT_FABRIC_PARAMS, FabricParams
from repro.resex import (
    IOShares,
    PriceAgent,
    PriceCoordinator,
    RackFollower,
    ResExController,
)
from repro.sim.checkpoint import CheckpointConfig, RecoveryPolicy
from repro.sim.core import Environment
from repro.sim.rng import RngRegistry
from repro.sim.shard import Mailbox, Message, ShardStats, run_sharded
from repro.units import KiB, MS, MiB, SEC, US

#: Topology kinds a :class:`ClusterSpec` understands.
TOPOLOGY_KINDS = ("leaf-spine", "fat-tree")


@dataclass(frozen=True)
class ClusterSpec:
    """One cluster configuration: wiring, population and traffic."""

    name: str
    #: ``"leaf-spine"`` or ``"fat-tree"``.
    topology: str = "leaf-spine"
    #: Leaf-spine shape (ignored for fat-tree).
    racks: int = 4
    hosts_per_rack: int = 4
    spines: int = 2
    #: Fat-tree arity (ignored for leaf-spine); hosts = k^3/4.
    fat_tree_k: int = 4
    #: Guest VMs created per host (the flow-endpoint population).
    vms_per_host: int = 4
    #: Background VM-to-VM flows over the whole run.
    n_flows: int = 200
    #: Fraction of flows whose endpoints share a rack.
    intra_rack_frac: float = 0.7
    #: Flow sizes are log-uniform over [min, max].
    flow_bytes_min: int = 64 * KiB
    flow_bytes_max: int = 2 * MiB
    #: Simulated duration.
    sim_s: float = 0.1
    #: Price-gossip cadence of the cluster federation.
    sync_interval_ns: int = 2 * MS
    #: Deploy the monitored BenchEx pairs + ResEx controllers.
    with_resex: bool = True
    #: Inter-domain propagation latency of the store-and-forward relay
    #: (spine/core crossing).  Doubles as the conservative lookahead of
    #: a sharded run: no cross-domain influence can arrive sooner.
    cross_rack_latency_ns: int = 200 * US
    #: Forwarding cycle of the inter-domain backplane.  Relays handed
    #: to the spine/core stage depart in batches at multiples of this
    #: epoch (store-and-forward switches forward in scheduled cycles,
    #: aligned here with the federation's own 2 ms gossip cadence)
    #: rather than at arbitrary transfer-completion instants.  Besides
    #: being the batching a scheduled backplane actually does, it makes
    #: the egress schedule *predictable*: between epochs a domain can
    #: promise it will not send, which is exactly the send horizon the
    #: shard kernel's barrier elision needs (a coalesced run barriers
    #: per epoch, not per lookahead window).
    relay_epoch_ns: int = 2 * MS
    #: Deterministic link flaps per rack (rack-head egress degraded to
    #: 25% capacity), drawn from per-rack chaos streams.  0 = calm.
    chaos_flaps: int = 0

    def __post_init__(self) -> None:
        if self.topology not in TOPOLOGY_KINDS:
            raise ConfigError(
                f"unknown topology {self.topology!r} (have {TOPOLOGY_KINDS})"
            )
        if self.vms_per_host < 1:
            raise ConfigError("vms_per_host must be >= 1")
        if self.n_flows < 0:
            raise ConfigError("n_flows must be >= 0")
        if not 0.0 <= self.intra_rack_frac <= 1.0:
            raise ConfigError("intra_rack_frac must be within [0, 1]")
        if not 0 < self.flow_bytes_min <= self.flow_bytes_max:
            raise ConfigError("need 0 < flow_bytes_min <= flow_bytes_max")
        if self.sim_s <= 0:
            raise ConfigError("sim_s must be > 0")
        if self.topology == "leaf-spine" and self.racks < 2:
            raise ConfigError("a cluster needs at least two racks")
        if self.cross_rack_latency_ns < 1:
            raise ConfigError("cross_rack_latency_ns must be >= 1")
        if self.relay_epoch_ns < 1:
            raise ConfigError("relay_epoch_ns must be >= 1")
        if self.chaos_flaps < 0:
            raise ConfigError("chaos_flaps must be >= 0")
        if self.with_resex and self.rack_hosts < 2:
            raise ConfigError(
                "with_resex needs >= 2 hosts per rack (the monitored "
                "pairs live inside rack 0)"
            )

    @property
    def n_racks(self) -> int:
        if self.topology == "fat-tree":
            # The edge switch is the rack: k/2 hosts per edge.
            return self.fat_tree_k * (self.fat_tree_k // 2)
        return self.racks

    @property
    def n_hosts(self) -> int:
        if self.topology == "fat-tree":
            return self.fat_tree_k ** 3 // 4
        return self.racks * self.hosts_per_rack

    @property
    def rack_hosts(self) -> int:
        """Hosts per rack (uniform for both topologies)."""
        return self.n_hosts // self.n_racks

    @property
    def n_vms(self) -> int:
        return self.n_hosts * self.vms_per_host

    def domain_plan(self) -> DomainPlan:
        """The link-disjoint partition this spec's topology admits."""
        bps = DEFAULT_FABRIC_PARAMS.link_bytes_per_sec
        if self.topology == "fat-tree":
            return FatTreePlan(k=self.fat_tree_k, link_bytes_per_sec=bps)
        return LeafSpinePlan(
            racks=self.racks, hosts_per_rack=self.hosts_per_rack,
            spines=self.spines, link_bytes_per_sec=bps,
        )


#: The registered cluster presets.  ``cluster_scale`` is ROADMAP item
#: 1's headline configuration: 256 hosts / 2048 VMs on a 16x16
#: leaf-spine with 4 spines.  ``cluster_smoke`` is the CI-sized
#: end-to-end check; ``cluster_fat_tree`` exercises the three-stage
#: routing at k=8 (128 hosts).
CLUSTER_SPECS: Dict[str, ClusterSpec] = {
    spec.name: spec
    for spec in (
        ClusterSpec(
            name="cluster_smoke",
            racks=4, hosts_per_rack=4, spines=2,
            vms_per_host=4, n_flows=150, sim_s=0.08,
        ),
        ClusterSpec(
            name="cluster_scale",
            racks=16, hosts_per_rack=16, spines=4,
            vms_per_host=8, n_flows=2000, sim_s=0.25,
        ),
        ClusterSpec(
            name="cluster_fat_tree",
            topology="fat-tree", fat_tree_k=8,
            vms_per_host=8, n_flows=1000, sim_s=0.2,
        ),
    )
}


def cluster_spec(name: str) -> ClusterSpec:
    try:
        return CLUSTER_SPECS[name]
    except KeyError:
        raise ConfigError(
            f"unknown cluster preset {name!r} (try {sorted(CLUSTER_SPECS)})"
        ) from None


@dataclass
class FlowRecord:
    """One completed (or still-running) background flow."""

    label: str
    nbytes: int
    cross_rack: bool
    start_ns: int
    done_ns: Optional[int] = None
    #: Globally unique id (``r<rack>.f<index>``) joining the record,
    #: created in the source rack, with its completion, recorded
    #: wherever the destination rack runs.
    fid: str = ""

    @property
    def latency_us(self) -> Optional[float]:
        if self.done_ns is None:
            return None
        return (self.done_ns - self.start_ns) / 1e3


@dataclass
class ClusterResult:
    """Everything a cluster run produces, with a cacheable projection."""

    spec: ClusterSpec
    seed: int
    sim_time_ns: int
    flows: List[FlowRecord]
    #: Merged over every domain fabric (counts summed, max_component
    #: maxed) — in shard order, which equals domain order.
    solver_stats: Dict[str, int]
    #: Reporting-VM latencies (us); empty without ResEx pairs.
    reporting_us: np.ndarray
    federation_syncs: int = 0
    federation_price: float = 1.0
    #: Execution statistics of the sharded runtime; ``None`` for the
    #: plain serial path.  Deliberately excluded from :meth:`metrics`
    #: so digests are shard-count-independent.
    shard_stats: Optional[ShardStats] = None

    def completed(self) -> List[FlowRecord]:
        return [f for f in self.flows if f.done_ns is not None]

    def metrics(self) -> Dict[str, float]:
        """Float-only metrics — the sweep cache's storable shape."""
        done = self.completed()
        lat = np.array([f.latency_us for f in done], dtype=float)
        cross = [f for f in done if f.cross_rack]
        out: Dict[str, float] = {
            "hosts": float(self.spec.n_hosts),
            "vms": float(self.spec.n_vms),
            "flows_submitted": float(len(self.flows)),
            "flows_completed": float(len(done)),
            "flows_cross_rack": float(len(cross)),
            "flow_bytes_total": float(sum(f.nbytes for f in done)),
            "flow_p50_us": float(np.percentile(lat, 50)) if len(lat) else math.nan,
            "flow_p99_us": float(np.percentile(lat, 99)) if len(lat) else math.nan,
            "federation_syncs": float(self.federation_syncs),
            "federation_price": float(self.federation_price),
            "sim_time_s": self.sim_time_ns / SEC,
        }
        stats = self.solver_stats
        solves = stats["global_solves"] + stats["component_solves"]
        out["solver_global_solves"] = float(stats["global_solves"])
        out["solver_component_solves"] = float(stats["component_solves"])
        out["solver_max_component"] = float(stats["max_component"])
        #: Locality evidence: fraction of reallocation solves that
        #: never left their connected component.
        out["solver_component_frac"] = (
            stats["component_solves"] / solves if solves else math.nan
        )
        if len(self.reporting_us):
            out["reporting_p50_us"] = float(np.percentile(self.reporting_us, 50))
            out["reporting_p99_us"] = float(np.percentile(self.reporting_us, 99))
        return out


class _WorldBed:
    """The duck-typed testbed surface rack-local components consume.

    :class:`~repro.benchex.BenchExPair` and friends only touch ``env``
    and ``rng`` (their nodes carry everything else), so a world hands
    them this shim instead of a full two-host
    :class:`~repro.experiments.platform.Testbed`.
    """

    __test__ = False

    def __init__(
        self, env: Environment, rng: RngRegistry, params: FabricParams
    ) -> None:
        self.env = env
        self.rng = rng
        self.params = params


@dataclass
class _DomainState:
    """One domain's isolated slice of the world."""

    domain: int
    fabric: FluidFabric
    #: Switch links this domain owns, by plan name.
    links: Dict[str, NetLink] = field(default_factory=dict)


class WorldFederation:
    """Serial-facing view of the message-passing price federation.

    Presents the surface the old fabric-coupled ``ClusterFederation``
    exposed to callers (``racks``, ``syncs``, ``cluster_price``) on top
    of the per-rack :class:`~repro.resex.PriceCoordinator` /
    :class:`~repro.resex.PriceAgent` endpoints a world actually runs.
    """

    def __init__(
        self,
        coordinator: Optional[PriceCoordinator],
        agents: Dict[int, PriceAgent],
        controllers: Sequence[Tuple[int, ResExController]],
    ) -> None:
        self.coordinator = coordinator
        self.agents = dict(agents)
        self._controllers = tuple(controllers)

    @property
    def racks(self) -> Tuple[Tuple[int, ResExController], ...]:
        return self._controllers

    @property
    def syncs(self) -> int:
        return self.coordinator.syncs if self.coordinator is not None else 0

    @property
    def cluster_price(self) -> float:
        if self.coordinator is None:
            return 1.0
        return self.coordinator.cluster_price

    def start(self) -> None:
        if self.coordinator is not None:
            self.coordinator.start()
        for agent in self.agents.values():
            agent.start()

    def __repr__(self) -> str:
        return (
            f"<WorldFederation racks={len(self._controllers)} "
            f"syncs={self.syncs} price={self.cluster_price:.2f}>"
        )


class ClusterWorld:
    """One environment's worth of a cluster: some (or all) domains.

    A serial run builds one world owning every domain; a sharded run
    builds one world per shard, each owning that shard's domains.  The
    construction path is identical — per-domain fabrics, rack-local
    components, one :class:`~repro.sim.shard.Mailbox` for everything
    that crosses a domain boundary — which is the whole bit-identity
    argument: grouping domains into worlds changes no event order any
    domain can observe.
    """

    def __init__(
        self,
        spec: ClusterSpec,
        seed: int,
        domains: Optional[Sequence[int]] = None,
    ) -> None:
        self.spec = spec
        self.seed = seed
        self.plan = spec.domain_plan()
        if domains is None:
            domains = range(self.plan.n_domains)
        self.domains: Tuple[int, ...] = tuple(sorted(domains))
        self.env = Environment()
        self.rng = RngRegistry(seed)
        self.params = DEFAULT_FABRIC_PARAMS
        self.bed = _WorldBed(self.env, self.rng, self.params)
        self.mailbox = Mailbox(self.env, spec.cross_rack_latency_ns)

        self._domains: Dict[int, _DomainState] = {}
        #: Global host index -> Node, local hosts only.
        self._host_nodes: Dict[int, Node] = {}
        #: Local racks (ascending) -> their nodes in host order.
        self.nodes_by_rack: Dict[int, List[Node]] = {}

        #: Relay egress batches awaiting their backplane forwarding
        #: epoch: departure instant -> [(origin, dest, kind, payload)]
        #: in hand-over order.  Populated by :meth:`_relay`, drained by
        #: :meth:`_flush_egress`; its keys (plus the next epoch
        #: boundary) are this world's send horizon.
        self._egress: Dict[int, List[Tuple[int, int, str, Tuple[Any, ...]]]] = {}
        self.mailbox.horizon_fn = self._send_horizon

        self.records: List[FlowRecord] = []
        self.done: Dict[str, int] = {}
        self.pairs: List[BenchExPair] = []
        self.reporter: Optional[BenchExPair] = None
        self.controllers: List[Tuple[int, ResExController]] = []
        self.coordinator: Optional[PriceCoordinator] = None
        self.agents: Dict[int, PriceAgent] = {}
        self._launched = False

        for d in self.domains:
            self._build_domain(d)
        if spec.with_resex:
            self._build_resex()

    # -- construction -------------------------------------------------------
    def _build_domain(self, d: int) -> None:
        spec, plan = self.spec, self.plan
        st = _DomainState(domain=d, fabric=FluidFabric(self.env))
        for name, bps in plan.domain_links(d):
            st.links[name] = st.fabric.add_link(name, bps)
        self._domains[d] = st
        rack_hosts = spec.rack_hosts
        for hi in plan.hosts_of(d):
            r, h = divmod(hi, rack_hosts)
            ncpus = spec.vms_per_host + (4 if h == 0 else 1)
            node = Node(
                self.env, st.fabric, f"rack{r}-host{h}", ncpus, 1.86e9,
                self.params, topology=None,
            )
            for v in range(spec.vms_per_host):
                node.create_guest(f"rack{r}-host{h}.vm{v}")
            self._host_nodes[hi] = node
            self.nodes_by_rack.setdefault(r, []).append(node)
        self.mailbox.register(d, self._on_message)

    def _build_resex(self) -> None:
        spec = self.spec
        rack0 = self.nodes_by_rack.get(0)
        if rack0 is not None:
            # The paper's monitored workload, entirely inside rack 0:
            # the reporting pair serves from the head to host 1, the
            # interferer from the head to the next host — both servers
            # share the head's egress port (the §VII contention point).
            reporter = BenchExPair(
                self.bed, rack0[0], rack0[1],
                BenchExConfig(name="rep", warmup_requests=50),
                with_agent=True,
            )
            interferer = BenchExPair(
                self.bed, rack0[0], rack0[min(2, len(rack0) - 1)],
                BenchExConfig(name="intf", buffer_bytes=2 * MiB),
            )
            self.pairs = [reporter, interferer]
            self.reporter = reporter

        for r in sorted(self.nodes_by_rack):
            head = self.nodes_by_rack[r][0]
            policy = IOShares() if r == 0 else RackFollower()
            ctl = ResExController(head, policy)
            if r == 0:
                ctl.monitor(
                    self.reporter.server_dom, agent=self.reporter.agent,
                    sla=REPORTING_SLA,
                )
                ctl.monitor(self.pairs[1].server_dom)
            else:
                # A follower prices whatever its rack hosts; monitor
                # the head's first guest so the controller has a
                # population.
                ctl.monitor(head.hypervisor.guest_domains()[0])
            ctl.start()
            self.controllers.append((r, ctl))

        n_racks = spec.n_racks
        for r, ctl in self.controllers:
            if r == 0:
                self.coordinator = PriceCoordinator(
                    self.env, ctl, n_racks, spec.sync_interval_ns,
                    send=self._fed_send,
                )
            else:
                self.agents[r] = PriceAgent(
                    self.env, r, ctl, spec.sync_interval_ns,
                    send=self._fed_send,
                )

    # -- index helpers ------------------------------------------------------
    def _head_index(self, rack: int) -> int:
        return rack * self.spec.rack_hosts

    def _host_index(self, rack: int, h: int) -> int:
        return rack * self.spec.rack_hosts + h

    # -- the cross-domain channel -------------------------------------------
    def _relay(
        self, origin: int, dest: int, kind: str, payload: Tuple[Any, ...]
    ) -> None:
        """Hand a message to the inter-domain backplane.

        The backplane forwards in scheduled cycles: a relay queued now
        departs at the next multiple of ``relay_epoch_ns`` (strictly in
        the future) and then pays the propagation latency.  Batching is
        what a store-and-forward stage does anyway; the payoff here is
        that *between* epochs this world provably cannot send, which is
        the send horizon (:meth:`_send_horizon`) barrier elision runs
        on.  Cross-domain departures go through the mailbox; an
        intra-domain relay (fat-tree racks sharing a pod) pays the same
        epoch + latency through a plain timer — same environment in
        every mode, so no ordering contract is needed beyond the
        kernel's.
        """
        epoch = self.spec.relay_epoch_ns
        departure = (self.env.now // epoch + 1) * epoch
        queue = self._egress.get(departure)
        if queue is None:
            queue = self._egress[departure] = []
            timer = self.env.timeout(departure - self.env.now)
            timer.callbacks.append(
                lambda _ev, at=departure: self._flush_egress(at)
            )
        queue.append((origin, dest, kind, payload))

    def _flush_egress(self, departure: int) -> None:
        """One backplane forwarding cycle: every queued relay departs.

        Hand-over order is event order within this world — identical
        however domains are grouped into worlds, so the per-origin
        mailbox sequence (the delivery tie-breaker) is partition-
        independent.
        """
        latency = self.spec.cross_rack_latency_ns
        for origin, dest, kind, payload in self._egress.pop(departure):
            if dest != origin:
                self.mailbox.send(origin, dest, latency, kind, payload)
            else:
                timer = self.env.timeout(latency)
                timer.callbacks.append(
                    lambda _ev, k=kind, p=payload: self._dispatch(k, p)
                )

    def _send_horizon(self) -> int:
        """Earliest future instant this world could mail another domain.

        Sends happen only inside :meth:`_flush_egress`, i.e. at epoch
        boundaries: the earliest already-armed departure, or — when
        nothing is queued yet — the next boundary (a relay queued at
        ``t >= now`` cannot depart before it).  Registered as the
        mailbox's ``horizon_fn``; the shard kernel turns the promise
        into multi-window strides.
        """
        epoch = self.spec.relay_epoch_ns
        nxt = (self.env.now // epoch + 1) * epoch
        if self._egress:
            armed = min(self._egress)
            if armed < nxt:
                return armed
        return nxt

    def _on_message(self, msg: Message) -> None:
        self._dispatch(msg.kind, msg.payload)

    def _dispatch(self, kind: str, payload: Tuple[Any, ...]) -> None:
        if kind == "flow":
            self._land_flow(*payload)
        elif kind == "fed":
            self._fed_deliver(*payload)
        else:  # pragma: no cover - defensive
            raise ConfigError(f"unknown cluster message kind {kind!r}")

    # -- background flows ---------------------------------------------------
    def launch(self, until_ns: int) -> None:
        """Schedule flows, chaos, pair deployment and the federation.

        Everything scheduled here happens at construction-determined
        instants drawn from rack-scoped streams, so the schedule is a
        pure function of (seed, spec, rack set).
        """
        if self._launched:
            raise ConfigError("cluster world already launched")
        self._launched = True
        spec = self.spec

        if self.pairs:
            def deploy_all(env):
                for pair in self.pairs:
                    yield from pair.deploy()
                for pair in self.pairs:
                    pair.start()

            self.env.process(deploy_all(self.env), name="cluster-deploy")
        if self.coordinator is not None:
            self.coordinator.start()
        for agent in self.agents.values():
            agent.start()

        self._launch_flows(until_ns)
        if spec.chaos_flaps > 0:
            self._launch_chaos(until_ns)

    def _launch_flows(self, until_ns: int) -> None:
        """Per-rack seeded flow schedules (satellite: shard-count-
        independent RNG).

        Each local rack draws its own flows from its own stream; the
        global flow population is the rack-ordered union, so any
        grouping of racks into worlds produces the same schedule.
        """
        spec, plan = self.spec, self.plan
        n_racks, rack_hosts = spec.n_racks, spec.rack_hosts
        base, rem = divmod(spec.n_flows, n_racks)
        # Flows start inside the first 70% of the run so the tail has
        # room to drain (completions are what the percentiles need).
        horizon = int(until_ns * 0.7)

        for r in sorted(self.nodes_by_rack):
            n_r = base + (1 if r < rem else 0)
            if n_r == 0:
                continue
            rng = self.rng.stream(f"cluster/flows/rack{r}")
            for i in range(n_r):
                src_h = int(rng.integers(rack_hosts))
                intra = (
                    rack_hosts > 1
                    and float(rng.random()) < spec.intra_rack_frac
                )
                if intra:
                    dst_r = r
                    dst_h = int(rng.integers(rack_hosts - 1))
                    if dst_h >= src_h:
                        dst_h += 1  # never loopback
                else:
                    dst_r = int(rng.integers(n_racks - 1))
                    if dst_r >= r:
                        dst_r += 1
                    dst_h = int(rng.integers(rack_hosts))
                nbytes = int(
                    math.exp(
                        float(
                            rng.uniform(
                                math.log(spec.flow_bytes_min),
                                math.log(spec.flow_bytes_max),
                            )
                        )
                    )
                )
                start_ns = int(rng.integers(horizon)) if horizon > 0 else 0
                sv = int(rng.integers(spec.vms_per_host))
                dv = int(rng.integers(spec.vms_per_host))
                record = FlowRecord(
                    label=(
                        f"rack{r}-host{src_h}.vm{sv}"
                        f"->rack{dst_r}-host{dst_h}.vm{dv}"
                    ),
                    nbytes=nbytes,
                    cross_rack=dst_r != r,
                    start_ns=start_ns,
                    fid=f"r{r}.f{i}",
                )
                self.records.append(record)
                si = self._host_index(r, src_h)
                di = self._host_index(dst_r, dst_h)
                self.env.process(
                    self._flow(record, si, di), name=f"flow.{record.fid}"
                )

    def _flow(self, record: FlowRecord, si: int, di: int):
        plan, env = self.plan, self.env
        if record.start_ns > 0:
            yield env.timeout(record.start_ns)
        d1, d2 = plan.domain_of(si), plan.domain_of(di)
        st = self._domains[d1]
        src = self._host_nodes[si].host
        if d1 == d2:
            dst = self._host_nodes[di].host
            hops = tuple(st.links[n] for n in plan.intra_hops(si, di))
            transfer = st.fabric.submit(
                [src.tx_link, *hops, dst.rx_link], record.nbytes, record.label
            )
            yield transfer.done
            self.done[record.fid] = env.now
        else:
            # Store-and-forward: source-side segment, then the relay
            # message (paying the inter-domain propagation latency),
            # then the destination-side segment over there.
            src_side, _ = plan.cross_hops(si, di)
            hops = tuple(st.links[n] for n in src_side)
            transfer = st.fabric.submit(
                [src.tx_link, *hops], record.nbytes, record.label
            )
            yield transfer.done
            self._relay(
                d1, d2, "flow", (record.fid, si, di, record.nbytes,
                                 record.label)
            )

    def _land_flow(
        self, fid: str, si: int, di: int, nbytes: int, label: str
    ) -> None:
        """Destination-side segment of a relayed cross-domain flow."""
        plan = self.plan
        d2 = plan.domain_of(di)
        st = self._domains[d2]
        _, dst_side = plan.cross_hops(si, di)
        hops = tuple(st.links[n] for n in dst_side)
        dst = self._host_nodes[di].host
        transfer = st.fabric.submit(
            [*hops, dst.rx_link], nbytes, label
        )
        transfer.done.callbacks.append(
            lambda _ev, fid=fid: self.done.__setitem__(fid, self.env.now)
        )

    # -- federation transport ----------------------------------------------
    def _fed_send(
        self, src_rack: int, dst_rack: int, kind: str, round_no: int,
        price: float,
    ) -> None:
        """One price-gossip control message from ``src_rack``.

        The message pays a real egress transfer on the source rack's
        fabric (head port + source-side switch hops) and then rides the
        cross-domain channel — contending with the very traffic its
        price governs.
        """
        plan = self.plan
        si = self._head_index(src_rack)
        di = self._head_index(dst_rack)
        d1, d2 = plan.domain_of(si), plan.domain_of(di)
        st = self._domains[d1]
        head = self._host_nodes[si].host
        label = f"fed.{kind}.r{src_rack}->r{dst_rack}.{round_no}"
        payload = (kind, dst_rack, round_no, src_rack, price)
        if d1 == d2:
            # Same pod: the full intra-domain route, then the relay
            # latency on a timer (one environment in every mode).
            dst_head = self._host_nodes[di].host
            hops = tuple(st.links[n] for n in plan.intra_hops(si, di))
            transfer = st.fabric.submit(
                [head.tx_link, *hops, dst_head.rx_link],
                PriceCoordinator.PAYLOAD_BYTES, label,
            )
        else:
            src_side, _ = plan.cross_hops(si, di)
            hops = tuple(st.links[n] for n in src_side)
            transfer = st.fabric.submit(
                [head.tx_link, *hops], PriceCoordinator.PAYLOAD_BYTES, label,
            )
        transfer.done.callbacks.append(
            lambda _ev: self._relay(d1, d2, "fed", payload)
        )

    def _fed_deliver(
        self, kind: str, dst_rack: int, round_no: int, src_rack: int,
        price: float,
    ) -> None:
        if kind == "gather":
            if self.coordinator is None:  # pragma: no cover - defensive
                raise ConfigError("gather message reached a world with no "
                                  "coordinator")
            self.coordinator.on_gather(round_no, src_rack, price)
        elif kind == "cast":
            agent = self.agents.get(dst_rack)
            if agent is None:  # pragma: no cover - defensive
                raise ConfigError(
                    f"cast for rack {dst_rack} reached the wrong world"
                )
            agent.on_cast(round_no, price)
        else:  # pragma: no cover - defensive
            raise ConfigError(f"unknown federation verb {kind!r}")

    # -- chaos ----------------------------------------------------------------
    def _launch_chaos(self, until_ns: int) -> None:
        """Per-rack seeded link flaps (rack-head egress to 25%)."""
        window = max(1, int(until_ns * 0.8))
        duration = max(1, int(until_ns * 0.1))
        for r in sorted(self.nodes_by_rack):
            rng = self.rng.stream(f"cluster/chaos/rack{r}")
            st = self._domains[self.plan.domain_of(self._head_index(r))]
            link_name = f"rack{r}-host0.tx"
            for j in range(self.spec.chaos_flaps):
                at_ns = int(rng.integers(window))
                self.env.process(
                    self._flap(st.fabric, link_name, at_ns, duration),
                    name=f"chaos.r{r}.{j}",
                )

    def _flap(self, fabric: FluidFabric, link: str, at_ns: int, dur_ns: int):
        if at_ns > 0:
            yield self.env.timeout(at_ns)
        fabric.set_link_degradation(link, 0.25)
        yield self.env.timeout(dur_ns)
        fabric.set_link_degradation(link, 1.0)

    # -- results ------------------------------------------------------------
    def finalize(self) -> Dict[str, Any]:
        """This world's picklable partial result (crosses a pipe in a
        forked run)."""
        solver = {
            "global_solves": 0, "global_transfers": 0,
            "component_solves": 0, "component_transfers": 0,
            "max_component": 0,
        }
        for d in self.domains:
            stats = self._domains[d].fabric.solver_stats
            for key in solver:
                if key == "max_component":
                    solver[key] = max(solver[key], stats[key])
                else:
                    solver[key] += stats[key]
        reporting: List[float] = []
        if self.reporter is not None and self.reporter.server is not None:
            reporting = [float(v) for v in self.reporter.server.latencies_us()]
        return {
            "records": self.records,
            "done": self.done,
            "solver_stats": solver,
            "reporting": reporting,
            "federation_syncs": (
                self.coordinator.syncs if self.coordinator is not None else 0
            ),
            "federation_price": (
                self.coordinator.cluster_price
                if self.coordinator is not None else 1.0
            ),
        }


def _merge_parts(
    parts: List[Dict[str, Any]], spec: ClusterSpec, seed: int, until_ns: int
) -> ClusterResult:
    """Fold per-world partials (shard order == domain order) into one
    :class:`ClusterResult`; pure data, identical in every mode."""
    records: List[FlowRecord] = []
    done: Dict[str, int] = {}
    solver = {
        "global_solves": 0, "global_transfers": 0,
        "component_solves": 0, "component_transfers": 0,
        "max_component": 0,
    }
    reporting: List[float] = []
    syncs, price = 0, 1.0
    for part in parts:
        records.extend(part["records"])
        done.update(part["done"])
        for key in solver:
            if key == "max_component":
                solver[key] = max(solver[key], part["solver_stats"][key])
            else:
                solver[key] += part["solver_stats"][key]
        reporting.extend(part["reporting"])
        syncs += part["federation_syncs"]
        if part["federation_syncs"] > 0 or part["federation_price"] != 1.0:
            price = part["federation_price"]
    for rec in records:
        rec.done_ns = done.get(rec.fid, rec.done_ns)
    return ClusterResult(
        spec=spec,
        seed=seed,
        sim_time_ns=until_ns,
        flows=records,
        solver_stats=solver,
        reporting_us=np.asarray(reporting, dtype=float),
        federation_syncs=syncs,
        federation_price=price,
    )


@dataclass
class ClusterSetup:
    """A fully wired, not-yet-run (serial) cluster scenario."""

    spec: ClusterSpec
    seed: int
    world: ClusterWorld

    @property
    def nodes(self) -> List[List[Node]]:
        """``nodes[r][h]``: host ``h`` of rack ``r`` (serial world)."""
        return [
            self.world.nodes_by_rack[r]
            for r in sorted(self.world.nodes_by_rack)
        ]

    @property
    def rack_heads(self) -> List[Node]:
        return [rack[0] for rack in self.nodes]

    @property
    def controllers(self) -> List[ResExController]:
        return [ctl for _r, ctl in self.world.controllers]

    @property
    def federation(self) -> Optional[WorldFederation]:
        if not self.world.controllers:
            return None
        return WorldFederation(
            self.world.coordinator, self.world.agents, self.world.controllers
        )

    @property
    def pairs(self) -> List[BenchExPair]:
        return self.world.pairs

    @property
    def reporter(self) -> Optional[BenchExPair]:
        return self.world.reporter

    @property
    def flows(self) -> List[FlowRecord]:
        return self.world.records

    def execute(self, sim_s: Optional[float] = None) -> ClusterResult:
        """Deploy pairs, start flows and the federation, run, collect."""
        until_ns = int(
            (sim_s if sim_s is not None else self.spec.sim_s) * SEC
        )
        self.world.launch(until_ns)
        self.world.env.run(until=until_ns)
        return _merge_parts(
            [self.world.finalize()], self.spec, self.seed, until_ns
        )


def build_cluster(spec: "ClusterSpec | str", seed: int = 7) -> ClusterSetup:
    """Wire a serial cluster scenario without advancing simulated time."""
    if isinstance(spec, str):
        spec = cluster_spec(spec)
    return ClusterSetup(
        spec=spec, seed=seed, world=ClusterWorld(spec, seed)
    )


def cluster_world_key(spec: ClusterSpec, seed: int, until_ns: int) -> str:
    """Stable identity of one cluster run, for checkpoint matching.

    A checkpoint journal only replays into the exact world that wrote
    it, so the key digests everything the build closure depends on:
    the full spec, the seed and the horizon.
    """
    import hashlib as _hashlib

    raw = f"{spec!r}|seed={seed}|until_ns={until_ns}"
    return "cluster/" + _hashlib.sha256(raw.encode()).hexdigest()[:16]


def run_cluster(
    spec: "ClusterSpec | str",
    seed: int = 7,
    sim_s: Optional[float] = None,
    shards: int = 1,
    backend: str = "auto",
    coalesce: bool = True,
    checkpoint_dir: "Optional[str]" = None,
    checkpoint_every: Optional[int] = None,
    restore: bool = False,
    recovery: "Optional[RecoveryPolicy]" = None,
    worker_faults: Sequence[Any] = (),
) -> ClusterResult:
    """Build and run one cluster scenario (the one-call API).

    ``shards > 1`` partitions the run across that many workers along
    the topology's domain plan; the result is bit-identical to
    ``shards=1`` (the differential suite holds this to the digest).
    ``backend`` selects the shard transport (``auto``/``inline``/
    ``fork``; see :func:`repro.sim.shard.run_sharded`).
    ``coalesce=False`` disables barrier elision (one exchange per
    lookahead window — the escape hatch CI compares against; execution
    shape only, never bytes).

    ``checkpoint_dir`` enables barrier-aligned checkpointing
    (:mod:`repro.sim.checkpoint`) at a cadence of ``checkpoint_every``
    barriers, and — unless a :class:`~repro.sim.checkpoint
    .RecoveryPolicy` is supplied explicitly — also arms in-run worker
    recovery with the default respawn budget.  ``restore=True`` resumes
    from the newest usable checkpoint in that directory (empty
    directory: fresh start).  ``worker_faults`` injects host-level
    faults (:class:`repro.faults.WorkerKill`) for crash-recovery tests.
    """
    if isinstance(spec, str):
        spec = cluster_spec(spec)
    until_ns = int((sim_s if sim_s is not None else spec.sim_s) * SEC)
    plan = spec.domain_plan()

    checkpoint = None
    world_key = ""
    if checkpoint_dir is not None:
        kwargs: Dict[str, Any] = {"dir": checkpoint_dir}
        if checkpoint_every is not None:
            kwargs["every"] = int(checkpoint_every)
        checkpoint = CheckpointConfig(**kwargs)
        world_key = cluster_world_key(spec, seed, until_ns)
        if recovery is None:
            recovery = RecoveryPolicy(backoff_seed=seed)

    def build(domains: Optional[Tuple[int, ...]]) -> ClusterWorld:
        world = ClusterWorld(spec, seed, domains)
        world.launch(until_ns)
        return world

    merged, stats = run_sharded(
        build,
        n_domains=plan.n_domains,
        shards=shards,
        until_ns=until_ns,
        lookahead_ns=spec.cross_rack_latency_ns,
        merge=lambda parts: _merge_parts(parts, spec, seed, until_ns),
        backend=backend,
        coalesce=coalesce,
        checkpoint=checkpoint,
        recovery=recovery,
        restore=restore,
        world_key=world_key,
        worker_faults=worker_faults,
    )
    merged.shard_stats = stats
    return merged


def scaled_spec(spec: ClusterSpec, sim_s: float) -> ClusterSpec:
    """A copy of ``spec`` running for ``sim_s`` simulated seconds."""
    return replace(spec, sim_s=sim_s)
