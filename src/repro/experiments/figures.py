"""One experiment per figure of the paper's evaluation (§II, §VII).

Each ``fig*`` function runs the scenario(s) behind the corresponding
figure and returns a :class:`FigureResult` whose rows reproduce what
the figure plots.  Absolute values are calibrated to the paper's base
case; the *shapes* (orderings, growth directions, crossovers) are the
reproduction target — see EXPERIMENTS.md for the comparison.

Scale: ``REPRO_SCALE=full`` in the environment runs longer simulations
(closer to the paper's 100 000-iteration runs); the default ``fast``
profile keeps the whole harness in a few minutes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.analysis import (
    interference_reduction_pct,
    render_histogram,
    render_series,
    render_table,
)
from repro.benchex import INTERFERER_2MB, BenchExConfig, histogram_us
from repro.experiments.scenarios import ScenarioResult, run_scenario
from repro.resex import FreeMarket, IOShares
from repro.units import SEC, KiB


def scale_factor() -> float:
    """1.0 for the fast profile, 4.0 when REPRO_SCALE=full."""
    return 4.0 if os.environ.get("REPRO_SCALE", "fast") == "full" else 1.0


@dataclass
class FigureResult:
    """Rows + rendering for one reproduced figure."""

    figure: str
    title: str
    headers: List[str]
    rows: List[List[object]]
    notes: str = ""
    extra: Dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        text = render_table(
            self.headers, self.rows, title=f"{self.figure}: {self.title}"
        )
        if self.notes:
            text += f"\n{self.notes}"
        return text


def _breakdown_row(label: str, result: ScenarioResult) -> List[object]:
    b = result.breakdown
    return [
        label,
        b.ctime_mean,
        b.ctime_std,
        b.wtime_mean,
        b.wtime_std,
        b.ptime_mean,
        b.ptime_std,
        b.total_mean,
        b.total_std,
    ]


_BREAKDOWN_HEADERS = [
    "config",
    "CTime",
    "±",
    "WTime",
    "±",
    "PTime",
    "±",
    "Total",
    "±",
]


# ---------------------------------------------------------------------------
# Figure 1 — latency distribution, Normal vs Interfered server
# ---------------------------------------------------------------------------
def fig1_latency_distribution(seed: int = 7) -> FigureResult:
    """Latency distribution, normal vs interfered server (Fig. 1)."""
    sim_s = 0.8 * scale_factor()
    normal = run_scenario("normal", sim_s=sim_s, seed=seed)
    interfered = run_scenario(
        "interfered", interferer=INTERFERER_2MB, sim_s=sim_s, seed=seed
    )
    n_sum, i_sum = normal.summary(), interfered.summary()
    rows = [
        ["Normal", n_sum.n, n_sum.mean, n_sum.std, n_sum.p50, n_sum.p99],
        ["Interfered", i_sum.n, i_sum.mean, i_sum.std, i_sum.p50, i_sum.p99],
    ]
    hist_n = histogram_us(normal.latencies_us, bin_width_us=10.0)
    hist_i = histogram_us(interfered.latencies_us, bin_width_us=10.0)
    notes = (
        render_histogram(hist_n, title="\nNormal server distribution:")
        + "\n"
        + render_histogram(hist_i, title="\nInterfered server distribution:")
    )
    return FigureResult(
        figure="Fig.1",
        title="Request latency distribution, normal vs interfered (us)",
        headers=["server", "n", "mean", "std", "p50", "p99"],
        rows=rows,
        notes=notes,
        extra={"normal": n_sum.as_dict(), "interfered": i_sum.as_dict()},
    )


# ---------------------------------------------------------------------------
# Figure 2 — CTime/WTime/PTime vs number of servers, with/without load
# ---------------------------------------------------------------------------
def fig2_latency_components(seed: int = 7, max_servers: int = 3) -> FigureResult:
    """CTime/WTime/PTime vs #servers, +/- load (Fig. 2)."""
    sim_s = 0.8 * scale_factor()
    rows = []
    extra: Dict[str, object] = {}
    for n in range(1, max_servers + 1):
        plain = run_scenario(f"{n}-servers", n_servers=n, sim_s=sim_s, seed=seed)
        loaded = run_scenario(
            f"{n}-servers+load",
            n_servers=n,
            interferer=INTERFERER_2MB,
            sim_s=sim_s,
            seed=seed,
        )
        rows.append(_breakdown_row(f"{n} servers", plain))
        rows.append(_breakdown_row(f"{n} servers (Load)", loaded))
        extra[f"{n}"] = plain.breakdown.as_dict()
        extra[f"{n}+load"] = loaded.breakdown.as_dict()
    return FigureResult(
        figure="Fig.2",
        title="Server latency components vs #servers, +/- interfering load (us)",
        headers=_BREAKDOWN_HEADERS,
        rows=rows,
        extra=extra,
    )


# ---------------------------------------------------------------------------
# Figure 3 — latency vs buffer ratio with cap = 100 / ratio
# ---------------------------------------------------------------------------
FIG3_CONFIGS = [
    (32, 2048 * KiB, 3),
    (16, 1024 * KiB, 6),
    (8, 512 * KiB, 12),
    (4, 256 * KiB, 25),
    (2, 128 * KiB, 50),
    (1, 64 * KiB, 100),
]


def fig3_buffer_ratio(seed: int = 7) -> FigureResult:
    """Interferer buffer ratios with cap = 100/ratio (Fig. 3)."""
    sim_s = 0.8 * scale_factor()
    rows = []
    totals = {}
    for ratio, buf, cap in FIG3_CONFIGS:
        intf = BenchExConfig(
            name=f"intf-{ratio}", buffer_bytes=buf, pipeline_depth=2
        )
        res = run_scenario(
            f"ratio-{ratio}",
            interferer=intf,
            manual_cap=cap,
            sim_s=sim_s,
            seed=seed,
        )
        label = f"{ratio}({intf.label()}) cap={cap}"
        rows.append(_breakdown_row(label, res))
        totals[ratio] = res.breakdown.total_mean
    spread = max(totals.values()) - min(totals.values())
    return FigureResult(
        figure="Fig.3",
        title="Reporting-VM latency with interferer capped at 100/buffer-ratio (us)",
        headers=_BREAKDOWN_HEADERS,
        rows=rows,
        notes=(
            f"spread across ratios: {spread:.1f} us "
            "(paper: latencies 'do not change between all the instances')"
        ),
        extra={"totals": totals, "spread_us": spread},
    )


# ---------------------------------------------------------------------------
# Figure 4 — latency vs CPU cap for the 2MB interferer
# ---------------------------------------------------------------------------
FIG4_CAPS = [100, 90, 80, 70, 60, 50, 40, 30, 20, 10, 3]


def fig4_cap_sweep(seed: int = 7) -> FigureResult:
    """Victim latency vs the 2MB interferer's CPU cap (Fig. 4)."""
    sim_s = 0.8 * scale_factor()
    rows = []
    totals = {}
    for cap in FIG4_CAPS:
        res = run_scenario(
            f"cap-{cap}",
            interferer=INTERFERER_2MB,
            manual_cap=cap,
            sim_s=sim_s,
            seed=seed,
        )
        rows.append(_breakdown_row(f"cap={cap}", res))
        totals[cap] = res.breakdown.total_mean
    base = run_scenario("base", sim_s=sim_s, seed=seed)
    rows.append(_breakdown_row("Base", base))
    totals["base"] = base.breakdown.total_mean
    return FigureResult(
        figure="Fig.4",
        title="Reporting-VM latency as the 2MB interferer's CPU cap decreases (us)",
        headers=_BREAKDOWN_HEADERS,
        rows=rows,
        extra={"totals": totals},
    )


# ---------------------------------------------------------------------------
# Figures 5/6 — FreeMarket timeline: latency + caps (5), Reso balances (6)
# ---------------------------------------------------------------------------
def _policy_timeline(policy, name: str, seed: int) -> ScenarioResult:
    sim_s = 3.0 * scale_factor()
    return run_scenario(
        name,
        interferer=INTERFERER_2MB,
        policy=policy,
        sim_s=sim_s,
        seed=seed,
    )


def fig5_freemarket_timeline(seed: int = 7) -> FigureResult:
    """Latency + cap timeline under FreeMarket (Fig. 5)."""
    sim_s = 3.0 * scale_factor()
    base = run_scenario("base", sim_s=min(sim_s, 1.0), seed=seed)
    intf = run_scenario(
        "intf", interferer=INTERFERER_2MB, sim_s=min(sim_s, 1.0), seed=seed
    )
    fm = _policy_timeline(FreeMarket(), "freemarket", seed)

    times = np.array([t for t, _ in fm.samples]) / SEC
    values = np.array([v for _, v in fm.samples])
    cap_key = f"resex.dom{fm.interferer_domid}.cap"
    cap_t, cap_v = fm.probe_series[cap_key]

    rows = [
        ["Base 64KB", base.breakdown.total_mean],
        ["Intf 64KB", intf.breakdown.total_mean],
        ["FreeMarket 64KB", fm.breakdown.total_mean],
        ["FreeMarket p99", float(np.percentile(values, 99))],
        ["2MB-VM cap (min)", float(np.min(cap_v))],
        ["2MB-VM cap (mean)", float(np.mean(cap_v))],
    ]
    notes = (
        render_series(
            times, values, title="\nFreeMarket 64KB-VM latency timeline (us):"
        )
        + "\n"
        + render_series(
            np.asarray(cap_t) / SEC,
            cap_v,
            title="\nFreeMarket 2MB-VM CPU-cap timeline (%):",
            value_label="cap%",
        )
    )
    return FigureResult(
        figure="Fig.5",
        title="Application latency under FreeMarket (us)",
        headers=["series", "value"],
        rows=rows,
        notes=notes,
        extra={
            "base_mean": base.breakdown.total_mean,
            "intf_mean": intf.breakdown.total_mean,
            "fm_mean": fm.breakdown.total_mean,
        },
    )


def fig6_reso_depletion(seed: int = 7) -> FigureResult:
    """Reso balance trajectories under FreeMarket (Fig. 6)."""
    fm = _policy_timeline(FreeMarket(), "freemarket", seed)
    rows = []
    notes_parts = []
    # The interferer's domid is known; the reporting VM is the other
    # monitored domain.
    intf_domid = fm.interferer_domid
    reso_keys = [k for k in fm.probe_series if k.endswith(".resos")]
    extra = {}
    for key in sorted(reso_keys):
        domid = int(key.split(".")[1].removeprefix("dom"))
        t, v = fm.probe_series[key]
        label = "2MB VM" if domid == intf_domid else "64KB VM"
        rows.append(
            [
                f"Resos {label} (start)",
                float(v[0]),
            ]
        )
        rows.append([f"Resos {label} (min)", float(np.min(v))])
        rows.append(
            [f"Resos {label} (end-of-epoch floor hit)", bool(np.min(v) <= v[0] * 0.01)]
        )
        notes_parts.append(
            render_series(
                np.asarray(t) / SEC,
                v,
                title=f"\nReso balance timeline, {label}:",
                value_label="resos",
            )
        )
        extra[label] = {"min": float(np.min(v)), "start": float(v[0])}
        cap_t, cap_v = fm.probe_series[f"resex.dom{domid}.cap"]
        rows.append([f"Cap {label} (min)", float(np.min(cap_v))])
        extra[label]["cap_min"] = float(np.min(cap_v))
    return FigureResult(
        figure="Fig.6",
        title="Reso depletion and rated capping under FreeMarket",
        headers=["series", "value"],
        rows=rows,
        notes="\n".join(notes_parts),
        extra=extra,
    )


# ---------------------------------------------------------------------------
# Figure 7 — IOShares timeline
# ---------------------------------------------------------------------------
def fig7_ioshares_timeline(seed: int = 7) -> FigureResult:
    """Latency + cap timeline under IOShares (Fig. 7)."""
    sim_s = 3.0 * scale_factor()
    base = run_scenario("base", sim_s=min(sim_s, 1.0), seed=seed)
    intf = run_scenario(
        "intf", interferer=INTERFERER_2MB, sim_s=min(sim_s, 1.0), seed=seed
    )
    ios = _policy_timeline(IOShares(), "ioshares", seed)

    times = np.array([t for t, _ in ios.samples]) / SEC
    values = np.array([v for _, v in ios.samples])
    cap_key = f"resex.dom{ios.interferer_domid}.cap"
    cap_t, cap_v = ios.probe_series[cap_key]

    rows = [
        ["Base 64KB", base.breakdown.total_mean],
        ["Intf 64KB", intf.breakdown.total_mean],
        ["IOShares 64KB", ios.breakdown.total_mean],
        ["IOShares p99", float(np.percentile(values, 99))],
        ["2MB-VM cap (min)", float(np.min(cap_v))],
        ["2MB-VM cap (mean)", float(np.mean(cap_v))],
    ]
    notes = (
        render_series(
            times, values, title="\nIOShares 64KB-VM latency timeline (us):"
        )
        + "\n"
        + render_series(
            np.asarray(cap_t) / SEC,
            cap_v,
            title="\nIOShares 2MB-VM CPU-cap timeline (%):",
            value_label="cap%",
        )
    )
    return FigureResult(
        figure="Fig.7",
        title="Application latency under IOShares (us)",
        headers=["series", "value"],
        rows=rows,
        notes=notes,
        extra={
            "base_mean": base.breakdown.total_mean,
            "intf_mean": intf.breakdown.total_mean,
            "ios_mean": ios.breakdown.total_mean,
        },
    )


# ---------------------------------------------------------------------------
# Figure 8 — no-interference cases: backoff and fairness
# ---------------------------------------------------------------------------
def fig8_no_interference(seed: int = 7) -> FigureResult:
    """Non-interference cases: back-off and fairness (Fig. 8)."""
    sim_s = 1.5 * scale_factor()
    peer_64kb = BenchExConfig(name="peer64", buffer_bytes=64 * KiB)
    slow_2mb = BenchExConfig(
        name="slow2mb", buffer_bytes=2048 * KiB, pipeline_depth=1
    )

    base = run_scenario("base", sim_s=sim_s, seed=seed)
    cases = [
        ("FM-64KB-64KB", peer_64kb, FreeMarket(), None),
        ("IOS-64KB-64KB", peer_64kb, IOShares(), None),
        # "the 2MB VM is issuing requests at 10 requests per epoch".
        ("FM-64KB-2MB-NoIntf", slow_2mb, FreeMarket(), 10.0),
        ("IOS-64KB-2MB-NoIntf", slow_2mb, IOShares(), 10.0),
    ]
    rows = [["Base-64KB", base.breakdown.total_mean, base.breakdown.total_std]]
    extra = {"Base-64KB": base.breakdown.total_mean}
    for label, intf_cfg, policy, pacer_hz in cases:
        res = run_scenario(
            label,
            interferer=intf_cfg,
            policy=policy,
            sim_s=sim_s,
            seed=seed,
            interferer_pacer_hz=pacer_hz,
        )
        rows.append([label, res.breakdown.total_mean, res.breakdown.total_std])
        extra[label] = res.breakdown.total_mean
    return FigureResult(
        figure="Fig.8",
        title="FreeMarket and IOShares on non-interference cases (us)",
        headers=["configuration", "total", "±"],
        rows=rows,
        notes=(
            "paper: 'the values are almost equal to the Base values' — "
            "ResEx backs off when there is no interference"
        ),
        extra=extra,
    )


# ---------------------------------------------------------------------------
# Figure 9 — FreeMarket vs IOShares across interferer buffer sizes
# ---------------------------------------------------------------------------
FIG9_BUFFERS = [64 * KiB, 128 * KiB, 256 * KiB, 512 * KiB, 1024 * KiB]


def fig9_buffer_size_response(seed: int = 7) -> FigureResult:
    """FreeMarket vs IOShares across interferer sizes (Fig. 9)."""
    sim_s = 1.5 * scale_factor()
    base = run_scenario("base", sim_s=sim_s, seed=seed)
    rows = []
    extra: Dict[str, object] = {"base": base.breakdown.total_mean}
    for buf in FIG9_BUFFERS:
        intf_cfg = BenchExConfig(
            name=f"intf-{buf // KiB}", buffer_bytes=buf, pipeline_depth=2
        )
        fm = run_scenario(
            f"fm-{buf}", interferer=intf_cfg, policy=FreeMarket(),
            sim_s=sim_s, seed=seed,
        )
        ios = run_scenario(
            f"ios-{buf}", interferer=intf_cfg, policy=IOShares(),
            sim_s=sim_s, seed=seed,
        )
        label = intf_cfg.label()
        rows.append(
            [
                label,
                base.breakdown.total_mean,
                fm.breakdown.total_mean,
                ios.breakdown.total_mean,
            ]
        )
        extra[label] = {
            "freemarket": fm.breakdown.total_mean,
            "ioshares": ios.breakdown.total_mean,
        }
    return FigureResult(
        figure="Fig.9",
        title="Mean 64KB-VM latency vs interferer buffer size, by policy (us)",
        headers=["intf buffer", "Base", "FreeMarket", "IOShares"],
        rows=rows,
        notes="paper: IOShares outperforms FreeMarket, staying close to base",
        extra=extra,
    )


# ---------------------------------------------------------------------------
# Headline claim — "reduce the latency interference by as much as 30%"
# ---------------------------------------------------------------------------
def headline_claim(seed: int = 7) -> FigureResult:
    """The abstract's up-to-30%% interference-reduction claim."""
    sim_s = 1.5 * scale_factor()
    intf = run_scenario(
        "intf", interferer=INTERFERER_2MB, sim_s=sim_s, seed=seed
    )
    ios = run_scenario(
        "ioshares",
        interferer=INTERFERER_2MB,
        policy=IOShares(),
        sim_s=sim_s,
        seed=seed,
    )
    reduction = interference_reduction_pct(
        intf.breakdown.total_mean, ios.breakdown.total_mean
    )
    rows = [
        ["Interfered mean (us)", intf.breakdown.total_mean],
        ["IOShares mean (us)", ios.breakdown.total_mean],
        ["Latency interference reduction (%)", reduction],
    ]
    return FigureResult(
        figure="Headline",
        title="Abstract claim: latency interference reduced by up to ~30%",
        headers=["metric", "value"],
        rows=rows,
        extra={"reduction_pct": reduction},
    )


ALL_FIGURES = {
    "fig1": fig1_latency_distribution,
    "fig2": fig2_latency_components,
    "fig3": fig3_buffer_ratio,
    "fig4": fig4_cap_sweep,
    "fig5": fig5_freemarket_timeline,
    "fig6": fig6_reso_depletion,
    "fig7": fig7_ioshares_timeline,
    "fig8": fig8_no_interference,
    "fig9": fig9_buffer_size_response,
    "headline": headline_claim,
}
