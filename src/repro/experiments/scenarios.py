"""Scenario builder: the standard experimental configurations (§VII).

Terminology follows the paper: the *reporting VM* runs the
latency-sensitive 64 KB BenchEx instance on the server host; the
*interfering VM* runs a larger-buffer instance beside it; their clients
run on the second host.  The *base case* is the reporting VM alone.

Construction and execution are split: :func:`build_scenario` wires the
testbed, workload pairs and (optionally) the ResEx controller into a
:class:`ScenarioSetup` without advancing time, and
:meth:`ScenarioSetup.execute` runs it.  :func:`run_scenario` composes
the two — the one-call API every figure uses — while the split lets
:func:`run_chaos_scenario` attach a :class:`~repro.faults.FaultEngine`
to the built platform before the first event fires.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.stats import LatencySummary
from repro.benchex import (
    BenchExConfig,
    BenchExPair,
    LatencyBreakdown,
    run_pairs,
)
from repro.errors import ConfigError
from repro.experiments.platform import Node, Testbed
from repro.faults import (
    CompletionDelay,
    ControllerOutage,
    DoorbellStall,
    FaultCampaign,
    FaultEngine,
    FaultImpact,
    LinkDegradation,
    MonitorDropout,
    MonitorStale,
    ResilienceReport,
    VCPUFreeze,
    fault_impacts,
    preset_campaign,
)
from repro.faults.metrics import DEFAULT_RECOVER_PCT, DEFAULT_ROLLING_WINDOW
from repro.resex import (
    LatencySLA,
    PricingPolicy,
    ResExController,
    policy_by_name,
)
from repro.telemetry import TelemetryBus
from repro.units import SEC, MiB

#: The calibrated base-case SLA for the reporting VM (209 us, tight).
REPORTING_SLA = LatencySLA(
    base_mean_us=209.0, base_std_us=3.0, threshold_pct=10.0
)


@dataclass
class ScenarioResult:
    """Everything the figure builders need from one run."""

    name: str
    #: Server-side breakdown per reporting VM (one per server pair).
    breakdowns: List[LatencyBreakdown]
    #: Pooled reporting-VM latencies (us).
    latencies_us: np.ndarray
    #: (completion time ns, latency us) samples of the first reporting VM.
    samples: List[tuple]
    #: Controller probe series keyed by name (empty without a policy).
    #: Backward-compatible accessor: the same samples flow over the
    #: telemetry bus (as ``resex`` counter records) when tracing is on.
    probe_series: Dict[str, tuple]
    #: domid of the interfering VM (None if absent).
    interferer_domid: Optional[int]
    sim_time_ns: int
    #: The telemetry bus the run emitted to (None when tracing was off).
    telemetry: Optional["TelemetryBus"] = None

    @property
    def breakdown(self) -> LatencyBreakdown:
        return self.breakdowns[0]

    def summary(self) -> LatencySummary:
        return LatencySummary.from_samples(self.latencies_us)


@dataclass
class ScenarioSetup:
    """A fully wired, not-yet-run scenario."""

    name: str
    bed: Testbed
    server_node: Node
    client_node: Node
    reporters: List[BenchExPair]
    pairs: List[BenchExPair]
    intf_pair: Optional[BenchExPair]
    controller: Optional[ResExController]
    interferer_pacer_hz: Optional[float]
    interferer_start_s: float
    telemetry: Optional[TelemetryBus]

    def execute(self, sim_s: float = 1.5) -> ScenarioResult:
        """Deploy the pairs, run for ``sim_s`` seconds, collect results."""
        bed = self.bed
        intf_pair = self.intf_pair
        needs_custom_deploy = intf_pair is not None and (
            self.interferer_pacer_hz is not None or self.interferer_start_s > 0
        )
        if needs_custom_deploy:
            def deploy_all(env):
                for pair in self.pairs:
                    yield from pair.deploy()
                if self.interferer_pacer_hz is not None:
                    gap_ns = int(SEC / self.interferer_pacer_hz)
                    intf_pair.client.pacer = lambda now: gap_ns
                for pair in self.pairs:
                    if pair is intf_pair and self.interferer_start_s > 0:
                        continue
                    pair.start()
                if self.interferer_start_s > 0:
                    yield env.timeout(int(self.interferer_start_s * SEC))
                    intf_pair.start()

            bed.env.process(deploy_all(bed.env), name="deploy")
            bed.env.run(until=int(sim_s * SEC))
        else:
            run_pairs(bed, self.pairs, until_ns=int(sim_s * SEC))

        reporters = self.reporters
        breakdowns = [r.server_breakdown() for r in reporters]
        pooled = np.concatenate(
            [r.server.latencies_us() for r in reporters]
        ) if reporters else np.array([])

        probe_series: Dict[str, tuple] = {}
        if self.controller is not None:
            for key, series in self.controller.probes.series.items():
                probe_series[key] = (series.times, series.values)

        return ScenarioResult(
            name=self.name,
            breakdowns=breakdowns,
            latencies_us=pooled,
            samples=[
                (r.t_cycle_start, r.total_us)
                for r in reporters[0].server.records
            ],
            probe_series=probe_series,
            interferer_domid=(
                self.intf_pair.server_dom.domid if self.intf_pair else None
            ),
            sim_time_ns=bed.env.now,
            telemetry=self.telemetry,
        )


def build_scenario(
    name: str,
    *,
    interferer: Optional[BenchExConfig] = None,
    policy: "PricingPolicy | str | None" = None,
    manual_cap: Optional[int] = None,
    n_servers: int = 1,
    seed: int = 7,
    sla: LatencySLA = REPORTING_SLA,
    reporting_config: Optional[BenchExConfig] = None,
    interferer_pacer_hz: Optional[float] = None,
    interferer_start_s: float = 0.0,
    reso_weights: Optional[Dict[str, float]] = None,
    telemetry: Optional[TelemetryBus] = None,
) -> ScenarioSetup:
    """Wire one standard scenario without running it.

    Parameters mirror the paper's experiment axes: an optional
    interfering instance, an optional ResEx pricing policy (instance or
    registry name), an optional *manual* CPU cap on the interfering VM
    (Figs. 3-4 bypass ResEx and set caps by hand), and the number of
    collocated reporting servers (Fig. 2).

    Extensions beyond the paper's figures: ``interferer_start_s`` delays
    the interferer's onset (for measuring policy reaction time), and
    ``reso_weights`` maps ``{"reporting": w1, "interferer": w2}`` to a
    priority-weighted Reso distribution (§V-C's unequal shares).

    ``telemetry`` attaches a :class:`~repro.telemetry.TelemetryBus` to
    the run's environment so every layer emits trace records into it
    (see ``python -m repro trace``).
    """
    if n_servers < 1:
        raise ConfigError("n_servers must be >= 1")
    if isinstance(policy, str):
        policy = policy_by_name(policy)()

    bed = Testbed.paper_testbed(seed=seed)
    if telemetry is not None:
        bed.env.telemetry = telemetry
    server_node = bed.node("server-host")
    client_node = bed.node("client-host")

    base_cfg = reporting_config or BenchExConfig(name="rep", warmup_requests=50)
    with_agent = policy is not None
    reporters = [
        BenchExPair(
            bed,
            server_node,
            client_node,
            replace(base_cfg, name=f"{base_cfg.name}{i}"),
            with_agent=with_agent,
        )
        for i in range(n_servers)
    ]
    pairs: List[BenchExPair] = list(reporters)

    intf_pair = None
    if interferer is not None:
        intf_pair = BenchExPair(bed, server_node, client_node, interferer)
        pairs.append(intf_pair)
        if manual_cap is not None:
            server_node.hypervisor.set_cap(intf_pair.server_dom.domid, manual_cap)

    controller = None
    if policy is not None:
        weights = None
        if reso_weights is not None:
            weights = {}
            for rep in reporters:
                weights[rep.server_dom.domid] = reso_weights.get("reporting", 1.0)
            if intf_pair is not None:
                weights[intf_pair.server_dom.domid] = reso_weights.get(
                    "interferer", 1.0
                )
        controller = ResExController(server_node, policy, weights=weights)
        for rep in reporters:
            controller.monitor(rep.server_dom, agent=rep.agent, sla=sla)
        if intf_pair is not None:
            controller.monitor(intf_pair.server_dom)
        controller.start()

    return ScenarioSetup(
        name=name,
        bed=bed,
        server_node=server_node,
        client_node=client_node,
        reporters=reporters,
        pairs=pairs,
        intf_pair=intf_pair,
        controller=controller,
        interferer_pacer_hz=interferer_pacer_hz,
        interferer_start_s=interferer_start_s,
        telemetry=telemetry,
    )


def run_scenario(
    name: str,
    *,
    sim_s: float = 1.5,
    **kwargs,
) -> ScenarioResult:
    """Run one standard scenario and collect reporting-VM results.

    Equivalent to ``build_scenario(name, **kwargs).execute(sim_s)``;
    see :func:`build_scenario` for the parameter axes.
    """
    return build_scenario(name, **kwargs).execute(sim_s)


# -- chaos variants (repro.faults) ------------------------------------------

#: The standard chaos scenarios: Fig. 9-style interfered configurations
#: under each management regime, ready for a fault campaign.
CHAOS_SCENARIOS: Dict[str, Dict[str, Optional[str]]] = {
    "fig9": {"interferer": "2MB", "policy": "ioshares"},
    "fig9-static": {"interferer": "2MB", "policy": "static-ratio"},
    "fig9-freemarket": {"interferer": "2MB", "policy": "freemarket"},
    "interfered": {"interferer": "2MB", "policy": None},
    "base": {"interferer": None, "policy": None},
}


@dataclass
class ChaosResult:
    """One chaos run: the scenario outcome plus its resilience report."""

    scenario: ScenarioResult
    campaign: FaultCampaign
    engine: FaultEngine
    impacts: List[FaultImpact]
    report: ResilienceReport


def default_fault_engine(
    setup: ScenarioSetup, campaign: FaultCampaign
) -> FaultEngine:
    """Wire the standard injector set for a built scenario.

    Fabric and hypervisor injectors are always available; the monitor
    and controller injectors only exist when the scenario runs under a
    pricing policy.
    """
    engine = FaultEngine(setup.bed.env, campaign)
    engine.register(LinkDegradation(setup.bed.fabric))
    engine.register(DoorbellStall(setup.server_node.hca))
    engine.register(CompletionDelay(setup.server_node.hca))
    engine.register(VCPUFreeze(setup.server_node.hypervisor))
    if setup.controller is not None:
        engine.register(MonitorDropout(setup.controller.ibmon))
        engine.register(MonitorStale(setup.controller.ibmon))
        engine.register(ControllerOutage(setup.controller))
    return engine


def chaos_config(scenario: str) -> Dict[str, object]:
    """Translate a :data:`CHAOS_SCENARIOS` preset into builder kwargs."""
    try:
        preset = CHAOS_SCENARIOS[scenario]
    except KeyError:
        raise ConfigError(
            f"unknown chaos scenario {scenario!r} "
            f"(try {sorted(CHAOS_SCENARIOS)})"
        ) from None
    kwargs: Dict[str, object] = {}
    if preset["interferer"] == "2MB":
        kwargs["interferer"] = BenchExConfig(
            name="interferer", buffer_bytes=2 * MiB
        )
    kwargs["policy"] = preset["policy"]
    return kwargs


def run_chaos_scenario(
    name: str,
    *,
    campaign: "FaultCampaign | str",
    sim_s: float = 1.5,
    seed: int = 7,
    recover_pct: float = DEFAULT_RECOVER_PCT,
    rolling_window: int = DEFAULT_ROLLING_WINDOW,
    telemetry: Optional[TelemetryBus] = None,
    **kwargs,
) -> ChaosResult:
    """Run a scenario with a fault campaign injected against it.

    ``name`` may be a :data:`CHAOS_SCENARIOS` preset (which fixes the
    interferer and policy) or any label, with the scenario axes passed
    explicitly via ``kwargs`` as for :func:`build_scenario`.
    ``campaign`` is a :class:`~repro.faults.FaultCampaign` or a preset
    name from :func:`~repro.faults.campaign_presets`, scaled to
    ``sim_s``.

    After the run, per-fault resilience metrics are computed from the
    first reporting VM's latency samples, and — when tracing — fault
    recovery instants are appended to the telemetry bus so campaigns
    render on their own track in Chrome traces.
    """
    if name in CHAOS_SCENARIOS:
        merged = chaos_config(name)
        merged.update(kwargs)
        kwargs = merged
    if isinstance(campaign, str):
        campaign = preset_campaign(campaign, sim_s, seed=seed)

    setup = build_scenario(name, seed=seed, telemetry=telemetry, **kwargs)
    engine = default_fault_engine(setup, campaign)
    engine.start()
    result = setup.execute(sim_s)

    impacts = fault_impacts(
        result.samples,
        campaign,
        recover_pct=recover_pct,
        rolling_window=rolling_window,
    )
    policy = kwargs.get("policy")
    policy_name = (
        policy if isinstance(policy, str)
        else policy.name if policy is not None
        else "none"
    )
    report = ResilienceReport(
        scenario=name,
        policy=policy_name,
        campaign=campaign.name,
        seed=seed,
        sim_s=sim_s,
        baseline_us=(
            impacts[0].baseline_us if impacts else float("nan")
        ),
        impacts=tuple(impacts),
    )
    if telemetry is not None and telemetry.enabled:
        for impact in impacts:
            if impact.recovery_ns is None:
                continue
            fault = impact.fault
            telemetry.event(
                "faults",
                "recover",
                impact.recovery_ns,
                lane=f"{fault.kind}:{fault.target}",
                kind=fault.kind,
                target=fault.target,
                ttr_ns=impact.ttr_ns,
            )
    return ChaosResult(
        scenario=result,
        campaign=campaign,
        engine=engine,
        impacts=impacts,
        report=report,
    )
