"""Scenario builder: the standard experimental configurations (§VII).

Terminology follows the paper: the *reporting VM* runs the
latency-sensitive 64 KB BenchEx instance on the server host; the
*interfering VM* runs a larger-buffer instance beside it; their clients
run on the second host.  The *base case* is the reporting VM alone.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.stats import LatencySummary
from repro.benchex import (
    BenchExConfig,
    BenchExPair,
    LatencyBreakdown,
    run_pairs,
)
from repro.errors import ConfigError
from repro.experiments.platform import Testbed
from repro.resex import (
    LatencySLA,
    PricingPolicy,
    ResExController,
    policy_by_name,
)
from repro.telemetry import TelemetryBus
from repro.units import SEC

#: The calibrated base-case SLA for the reporting VM (209 us, tight).
REPORTING_SLA = LatencySLA(
    base_mean_us=209.0, base_std_us=3.0, threshold_pct=10.0
)


@dataclass
class ScenarioResult:
    """Everything the figure builders need from one run."""

    name: str
    #: Server-side breakdown per reporting VM (one per server pair).
    breakdowns: List[LatencyBreakdown]
    #: Pooled reporting-VM latencies (us).
    latencies_us: np.ndarray
    #: (completion time ns, latency us) samples of the first reporting VM.
    samples: List[tuple]
    #: Controller probe series keyed by name (empty without a policy).
    #: Backward-compatible accessor: the same samples flow over the
    #: telemetry bus (as ``resex`` counter records) when tracing is on.
    probe_series: Dict[str, tuple]
    #: domid of the interfering VM (None if absent).
    interferer_domid: Optional[int]
    sim_time_ns: int
    #: The telemetry bus the run emitted to (None when tracing was off).
    telemetry: Optional["TelemetryBus"] = None

    @property
    def breakdown(self) -> LatencyBreakdown:
        return self.breakdowns[0]

    def summary(self) -> LatencySummary:
        return LatencySummary.from_samples(self.latencies_us)


def run_scenario(
    name: str,
    *,
    interferer: Optional[BenchExConfig] = None,
    policy: "PricingPolicy | str | None" = None,
    manual_cap: Optional[int] = None,
    n_servers: int = 1,
    sim_s: float = 1.5,
    seed: int = 7,
    sla: LatencySLA = REPORTING_SLA,
    reporting_config: Optional[BenchExConfig] = None,
    interferer_pacer_hz: Optional[float] = None,
    interferer_start_s: float = 0.0,
    reso_weights: Optional[Dict[str, float]] = None,
    telemetry: Optional[TelemetryBus] = None,
) -> ScenarioResult:
    """Run one standard scenario and collect reporting-VM results.

    Parameters mirror the paper's experiment axes: an optional
    interfering instance, an optional ResEx pricing policy (instance or
    registry name), an optional *manual* CPU cap on the interfering VM
    (Figs. 3-4 bypass ResEx and set caps by hand), and the number of
    collocated reporting servers (Fig. 2).

    Extensions beyond the paper's figures: ``interferer_start_s`` delays
    the interferer's onset (for measuring policy reaction time), and
    ``reso_weights`` maps ``{"reporting": w1, "interferer": w2}`` to a
    priority-weighted Reso distribution (§V-C's unequal shares).

    ``telemetry`` attaches a :class:`~repro.telemetry.TelemetryBus` to
    the run's environment so every layer emits trace records into it
    (see ``python -m repro trace``).
    """
    if n_servers < 1:
        raise ConfigError("n_servers must be >= 1")
    if isinstance(policy, str):
        policy = policy_by_name(policy)()

    bed = Testbed.paper_testbed(seed=seed)
    if telemetry is not None:
        bed.env.telemetry = telemetry
    server_node = bed.node("server-host")
    client_node = bed.node("client-host")

    base_cfg = reporting_config or BenchExConfig(name="rep", warmup_requests=50)
    with_agent = policy is not None
    reporters = [
        BenchExPair(
            bed,
            server_node,
            client_node,
            replace(base_cfg, name=f"{base_cfg.name}{i}"),
            with_agent=with_agent,
        )
        for i in range(n_servers)
    ]
    pairs: List[BenchExPair] = list(reporters)

    intf_pair = None
    if interferer is not None:
        intf_pair = BenchExPair(bed, server_node, client_node, interferer)
        pairs.append(intf_pair)
        if manual_cap is not None:
            server_node.hypervisor.set_cap(intf_pair.server_dom.domid, manual_cap)

    controller = None
    if policy is not None:
        weights = None
        if reso_weights is not None:
            weights = {}
            for rep in reporters:
                weights[rep.server_dom.domid] = reso_weights.get("reporting", 1.0)
            if intf_pair is not None:
                weights[intf_pair.server_dom.domid] = reso_weights.get(
                    "interferer", 1.0
                )
        controller = ResExController(server_node, policy, weights=weights)
        for rep in reporters:
            controller.monitor(rep.server_dom, agent=rep.agent, sla=sla)
        if intf_pair is not None:
            controller.monitor(intf_pair.server_dom)
        controller.start()

    needs_custom_deploy = intf_pair is not None and (
        interferer_pacer_hz is not None or interferer_start_s > 0
    )
    if needs_custom_deploy:
        def deploy_all(env):
            for pair in pairs:
                yield from pair.deploy()
            if interferer_pacer_hz is not None:
                gap_ns = int(SEC / interferer_pacer_hz)
                intf_pair.client.pacer = lambda now: gap_ns
            for pair in pairs:
                if pair is intf_pair and interferer_start_s > 0:
                    continue
                pair.start()
            if interferer_start_s > 0:
                yield env.timeout(int(interferer_start_s * SEC))
                intf_pair.start()

        bed.env.process(deploy_all(bed.env), name="deploy")
        bed.env.run(until=int(sim_s * SEC))
    else:
        run_pairs(bed, pairs, until_ns=int(sim_s * SEC))

    breakdowns = [r.server_breakdown() for r in reporters]
    pooled = np.concatenate(
        [r.server.latencies_us() for r in reporters]
    ) if reporters else np.array([])

    probe_series: Dict[str, tuple] = {}
    if controller is not None:
        for key, series in controller.probes.series.items():
            probe_series[key] = (series.times, series.values)

    return ScenarioResult(
        name=name,
        breakdowns=breakdowns,
        latencies_us=pooled,
        samples=[
            (r.t_cycle_start, r.total_us) for r in reporters[0].server.records
        ],
        probe_series=probe_series,
        interferer_domid=intf_pair.server_dom.domid if intf_pair else None,
        sim_time_ns=bed.env.now,
        telemetry=telemetry,
    )


def _deploy(pairs: List[BenchExPair]):
    for pair in pairs:
        yield from pair.deploy()
    for pair in pairs:
        pair.start()
