"""Registry fan-out: run figure/ablation suites through the sweep engine.

The figure and ablation registries are dictionaries of independent
experiment functions — exactly the shape :mod:`repro.parallel` wants.
:func:`run_registry_set` turns a subset of a registry into ``registry``
cells, fans them to ``jobs`` workers and returns the
:class:`~repro.experiments.figures.FigureResult` objects in registry
order.  Registry cells carry arbitrary payloads, so they are fanned
out but never cached (the content-addressed cache only stores float
metric dicts).
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.experiments.figures import FigureResult
from repro.experiments.multiseed import _check_complete
from repro.parallel import SweepJob, SweepReport, run_sweep

#: Registry names understood by the ``registry`` cell kind.
REGISTRIES = ("figures", "ablations")


def _registry(registry: str) -> Dict[str, object]:
    if registry == "figures":
        from repro.experiments.figures import ALL_FIGURES

        return ALL_FIGURES
    if registry == "ablations":
        from repro.experiments.ablations import ALL_ABLATIONS

        return ALL_ABLATIONS
    raise ConfigError(
        f"unknown experiment registry {registry!r} (have {REGISTRIES})"
    )


def run_registry_set(
    registry: str,
    names: Optional[Sequence[str]] = None,
    *,
    seed: int = 7,
    jobs: int = 1,
    telemetry=None,
) -> Tuple[Dict[str, FigureResult], SweepReport]:
    """Run the named experiments of one registry, possibly in parallel.

    ``names=None`` runs the whole registry.  Results come back as an
    insertion-ordered dict matching the registry (or ``names``) order
    regardless of which worker finished first.  The current
    ``REPRO_SCALE`` is pinned into each cell spec so workers apply the
    same scale even under a spawn start method.
    """
    table = _registry(registry)
    if names is None:
        names = list(table)
    unknown = [n for n in names if n not in table]
    if unknown:
        raise ConfigError(
            f"unknown experiments {unknown} in registry {registry!r}"
        )
    spec: Dict[str, object] = {"registry": registry}
    scale = os.environ.get("REPRO_SCALE")
    if scale:
        spec["scale"] = scale
    cells = [SweepJob("registry", name, int(seed), dict(spec)) for name in names]
    result = run_sweep(cells, workers=jobs, telemetry=telemetry)
    _check_complete(result, registry)
    return (
        {name: cell.payload for name, cell in zip(names, result.cells)},
        result.report,
    )


def run_cluster_set(
    names: Optional[Sequence[str]] = None,
    *,
    seed: int = 7,
    jobs: int = 1,
    sim_s: Optional[float] = None,
    telemetry=None,
) -> Tuple[Dict[str, Dict[str, float]], SweepReport]:
    """Run cluster-scale presets as ``cluster`` cells.

    ``names=None`` runs every :data:`~repro.experiments.cluster.
    CLUSTER_SPECS` preset.  Cluster cells return float metric dicts,
    so — unlike registry cells — they are content-addressed cacheable.
    """
    from repro.experiments.cluster import CLUSTER_SPECS

    if names is None:
        names = list(CLUSTER_SPECS)
    unknown = [n for n in names if n not in CLUSTER_SPECS]
    if unknown:
        raise ConfigError(
            f"unknown cluster presets {unknown} (have {sorted(CLUSTER_SPECS)})"
        )
    spec: Dict[str, object] = {}
    if sim_s is not None:
        spec["sim_s"] = float(sim_s)
    cells = [SweepJob("cluster", name, int(seed), dict(spec)) for name in names]
    result = run_sweep(cells, workers=jobs, telemetry=telemetry)
    _check_complete(result, "cluster")
    return (
        {name: cell.metrics for name, cell in zip(names, result.cells)},
        result.report,
    )


def run_service_set(
    names: Optional[Sequence[str]] = None,
    *,
    seed: int = 7,
    jobs: int = 1,
    requests: Optional[int] = None,
    telemetry=None,
) -> Tuple[Dict[str, Dict[str, float]], SweepReport]:
    """Run service-replay presets as ``service`` cells.

    ``names=None`` runs every :data:`~repro.service.replay.
    SERVICE_SPECS` preset (the ``service_replay`` scenario family).
    Service cells are deterministic in-process replays of the ResEx
    gateway's sim backend, return float metric dicts — including the
    response-log ``digest48`` — and are content-addressed cacheable.
    """
    from repro.service.replay import SERVICE_SPECS

    if names is None:
        names = list(SERVICE_SPECS)
    unknown = [n for n in names if n not in SERVICE_SPECS]
    if unknown:
        raise ConfigError(
            f"unknown service presets {unknown} (have {sorted(SERVICE_SPECS)})"
        )
    spec: Dict[str, object] = {}
    if requests is not None:
        spec["requests"] = int(requests)
    cells = [SweepJob("service", name, int(seed), dict(spec)) for name in names]
    result = run_sweep(cells, workers=jobs, telemetry=telemetry)
    _check_complete(result, "service")
    return (
        {name: cell.metrics for name, cell in zip(names, result.cells)},
        result.report,
    )


def run_figure_set(
    names: Optional[Sequence[str]] = None,
    *,
    seed: int = 7,
    jobs: int = 1,
    telemetry=None,
) -> Tuple[Dict[str, FigureResult], SweepReport]:
    """Run paper-figure experiments through the sweep engine."""
    return run_registry_set(
        "figures", names, seed=seed, jobs=jobs, telemetry=telemetry
    )


def run_ablation_set(
    names: Optional[Sequence[str]] = None,
    *,
    seed: int = 7,
    jobs: int = 1,
    telemetry=None,
) -> Tuple[Dict[str, FigureResult], SweepReport]:
    """Run design-choice ablations through the sweep engine."""
    return run_registry_set(
        "ablations", names, seed=seed, jobs=jobs, telemetry=telemetry
    )
