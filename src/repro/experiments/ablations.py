"""Ablation experiments for the design choices DESIGN.md calls out.

These go beyond the paper's figures: they vary one mechanism at a time
— out-of-Resos action, Reso share weighting, completion mode, IBMon
sampling cadence, policy reaction time, link model — and report how the
canonical 64KB-vs-2MB outcome changes.  Each has a bench under
``benchmarks/test_ablation_*.py``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict

import numpy as np

from repro.benchex import INTERFERER_2MB, BenchExConfig, BenchExPair, run_pairs
from repro.experiments.figures import FigureResult, scale_factor
from repro.experiments.platform import Testbed
from repro.experiments.scenarios import REPORTING_SLA, run_scenario
from repro.ibmon import IBMon
from repro.resex import FreeMarket, IOShares
from repro.units import SEC


def ablation_depletion_modes(seed: int = 7) -> FigureResult:
    """What should happen when a VM runs out of Resos?  (§VI-B's
    'beyond the scope' choice, made executable.)"""
    sim_s = 1.5 * scale_factor()
    rows = []
    extra: Dict[str, object] = {}
    for mode in ("gradual", "hard", "proportional"):
        res = run_scenario(
            f"dep-{mode}",
            interferer=INTERFERER_2MB,
            policy=FreeMarket(depletion_mode=mode),
            sim_s=sim_s,
            seed=seed,
        )
        _, caps = res.probe_series[f"resex.dom{res.interferer_domid}.cap"]
        rows.append(
            [
                mode,
                res.breakdown.total_mean,
                res.breakdown.total_std,
                float(np.min(caps)),
                float(np.mean(caps)),
            ]
        )
        extra[mode] = {
            "mean_us": res.breakdown.total_mean,
            "cap_mean": float(np.mean(caps)),
        }
    return FigureResult(
        figure="Ablation",
        title="FreeMarket out-of-Resos action (victim latency, us)",
        headers=["mode", "total", "±", "intf cap min", "intf cap mean"],
        rows=rows,
        extra=extra,
    )


def ablation_weighted_shares(seed: int = 7) -> FigureResult:
    """Priority-weighted Reso distribution (§V-C's unequal shares)."""
    sim_s = 1.5 * scale_factor()
    rows = []
    extra: Dict[str, object] = {}
    for label, weights in (
        ("1:1", None),
        ("3:1", {"reporting": 3.0, "interferer": 1.0}),
        ("9:1", {"reporting": 9.0, "interferer": 1.0}),
    ):
        res = run_scenario(
            f"w-{label}",
            interferer=INTERFERER_2MB,
            policy=FreeMarket(),
            sim_s=sim_s,
            seed=seed,
            reso_weights=weights,
        )
        _, resos = res.probe_series[f"resex.dom{res.interferer_domid}.resos"]
        rows.append(
            [label, res.breakdown.total_mean, res.breakdown.total_std, float(resos[0])]
        )
        extra[label] = res.breakdown.total_mean
    return FigureResult(
        figure="Ablation",
        title="Reso share weighting reporting:interferer (victim latency, us)",
        headers=["weights", "total", "±", "intf allocation"],
        rows=rows,
        notes="higher victim priority starves the interferer earlier each epoch",
        extra=extra,
    )


def ablation_completion_mode(seed: int = 7) -> FigureResult:
    """Busy-polling is the reason CPU caps throttle I/O: an event-driven
    interferer needs almost no CPU, so the cap lever loses its grip."""
    sim_s = 1.0 * scale_factor()
    rows = []
    extra: Dict[str, object] = {}
    for intf_mode in ("poll", "event"):
        for cap in (100, 10):
            bed = Testbed.paper_testbed(seed=seed)
            s, c = bed.node("server-host"), bed.node("client-host")
            rep = BenchExPair(
                bed, s, c, BenchExConfig(name="rep", warmup_requests=50)
            )
            intf = BenchExPair(
                bed, s, c, replace(INTERFERER_2MB, completion_mode=intf_mode)
            )
            s.hypervisor.set_cap(intf.server_dom.domid, cap)
            run_pairs(bed, [rep, intf], until_ns=int(sim_s * SEC))
            lat = rep.server.latencies_us()
            cpu = intf.server_dom.vcpu.cumulative_ns / bed.env.now * 100
            label = f"{intf_mode}/cap{cap}"
            rows.append([label, float(lat.mean()), float(lat.std()), cpu])
            extra[label] = float(lat.mean())
    return FigureResult(
        figure="Ablation",
        title="Interferer completion mode vs the CPU-cap lever (victim latency, us)",
        headers=["intf mode/cap", "total", "±", "intf CPU %"],
        rows=rows,
        notes=(
            "a hard cap tames a busy-polling interferer but barely dents an "
            "event-driven one — ResEx's actuator presumes poll-mode guests"
        ),
        extra=extra,
    )


def ablation_sampling_interval(seed: int = 7) -> FigureResult:
    """IBMon sampling cadence: estimate quality and policy outcome."""
    sim_s = 1.0 * scale_factor()
    rows = []
    extra: Dict[str, object] = {}
    for interval_us in (100, 250, 1000, 5000):
        bed = Testbed.paper_testbed(seed=seed)
        s, c = bed.node("server-host"), bed.node("client-host")
        rep = BenchExPair(
            bed, s, c, BenchExConfig(name="rep", warmup_requests=50),
            with_agent=True,
        )
        intf = BenchExPair(bed, s, c, INTERFERER_2MB)
        from repro.resex import ResExController

        ibmon = IBMon(s, sample_interval_ns=interval_us * 1000)
        ctl = ResExController(s, IOShares(), ibmon=ibmon)
        ctl.monitor(rep.server_dom, agent=rep.agent, sla=REPORTING_SLA)
        ctl.monitor(intf.server_dom)
        ctl.start()
        run_pairs(bed, [rep, intf], until_ns=int(sim_s * SEC))
        lat = rep.server.latencies_us()
        rows.append([f"{interval_us}us", float(lat.mean()), float(lat.std())])
        extra[str(interval_us)] = float(lat.mean())
    return FigureResult(
        figure="Ablation",
        title="IBMon sampling interval vs IOShares outcome (victim latency, us)",
        headers=["sample interval", "total", "±"],
        rows=rows,
        notes="counts come from producer indices, so coarse sampling degrades gracefully",
        extra=extra,
    )


def ablation_reaction_time(seed: int = 7) -> FigureResult:
    """How fast does each policy react to interferer onset?"""
    sim_s = 2.0 * scale_factor()
    onset_s = 0.5
    rows = []
    extra: Dict[str, object] = {}
    for label, policy in (
        ("freemarket", FreeMarket()),
        ("ioshares", IOShares()),
        ("static-ratio", "static-ratio"),
    ):
        res = run_scenario(
            f"onset-{label}",
            interferer=INTERFERER_2MB,
            policy=policy,
            interferer_start_s=onset_s,
            sim_s=sim_s,
            seed=seed,
        )
        cap_t, cap_v = res.probe_series[
            f"resex.dom{res.interferer_domid}.cap"
        ]
        capped = cap_t[np.asarray(cap_v) < 100]
        reaction_ms = (
            (capped[0] - onset_s * SEC) / 1e6 if capped.size else float("inf")
        )
        tail = [v for t, v in res.samples if t > (onset_s + 0.8) * SEC]
        rows.append(
            [
                label,
                reaction_ms,
                float(np.mean(tail)) if tail else float("nan"),
            ]
        )
        extra[label] = {
            "reaction_ms": reaction_ms,
            "settled_mean_us": float(np.mean(tail)) if tail else float("nan"),
        }
    return FigureResult(
        figure="Ablation",
        title="Policy reaction to interferer onset at t=0.5s",
        headers=["policy", "first-cap reaction (ms)", "settled latency (us)"],
        rows=rows,
        extra=extra,
    )


def ablation_link_models(seed: int = 7) -> FigureResult:
    """Fluid vs exact per-MTU packet link: completion-time agreement."""
    from repro.hw import FluidFabric, PacketLink
    from repro.sim import Environment
    from repro.units import GiB, KiB

    gb = float(GiB)
    rows = []
    worst_err = 0.0
    cases = [
        ("2 equal 64KB", [64 * KiB, 64 * KiB]),
        ("64KB vs 512KB", [512 * KiB, 64 * KiB]),
        ("4-way mix", [32 * KiB, 64 * KiB, 128 * KiB, 256 * KiB]),
        ("8 small", [16 * KiB] * 8),
    ]
    for label, sizes in cases:
        penv = Environment()
        plink = PacketLink(penv, gb, mtu_bytes=1 * KiB)
        dones = [plink.submit(s, str(i)) for i, s in enumerate(sizes)]
        penv.run(until=penv.all_of(dones))
        packet_ns = penv.now

        fenv = Environment()
        fabric = FluidFabric(fenv)
        link = fabric.add_link("l", gb)
        transfers = [fabric.submit([link], s, str(i)) for i, s in enumerate(sizes)]
        fenv.run(until=fenv.all_of([t.done for t in transfers]))
        fluid_ns = fenv.now

        err_pct = 100.0 * abs(packet_ns - fluid_ns) / packet_ns
        worst_err = max(worst_err, err_pct)
        rows.append(
            [label, packet_ns / 1000.0, fluid_ns / 1000.0, err_pct]
        )
    return FigureResult(
        figure="Ablation",
        title="Fluid vs exact packet link: total completion time (us)",
        headers=["workload", "packet (us)", "fluid (us)", "error %"],
        rows=rows,
        extra={"worst_error_pct": worst_err},
    )


def ablation_actuators(seed: int = 7) -> FigureResult:
    """CPU caps vs hardware rate limits as the congestion actuator.

    Same sensing and pricing (IOShares); the only difference is what
    the controller turns the price into.  The paper's platform lacked
    per-flow HW limits (§I), making the CPU cap its only lever — this
    quantifies what that constraint costs the interferer.
    """
    from repro.resex import HwShares, IOShares, ResExController

    sim_s = 1.5 * scale_factor()
    rows = []
    extra: Dict[str, object] = {}
    for label, policy in (
        ("cpu-caps (IOShares)", IOShares()),
        ("hw-limits (HwShares)", HwShares()),
    ):
        bed = Testbed.paper_testbed(seed=seed)
        s, c = bed.node("server-host"), bed.node("client-host")
        rep = BenchExPair(
            bed, s, c, BenchExConfig(name="rep", warmup_requests=50),
            with_agent=True,
        )
        intf = BenchExPair(bed, s, c, INTERFERER_2MB)
        ctl = ResExController(s, policy)
        ctl.monitor(rep.server_dom, agent=rep.agent, sla=REPORTING_SLA)
        ctl.monitor(intf.server_dom)
        ctl.start()
        run_pairs(bed, [rep, intf], until_ns=int(sim_s * SEC))
        lat = rep.server.latencies_us()
        intf_cpu = intf.server_dom.vcpu.cumulative_ns / bed.env.now * 100
        intf_served = intf.server.requests_served
        rows.append(
            [label, float(lat.mean()), float(lat.std()), intf_cpu, intf_served]
        )
        extra[policy.name] = {
            "victim_mean_us": float(lat.mean()),
            "intf_cpu_pct": intf_cpu,
            "intf_served": intf_served,
        }
    return FigureResult(
        figure="Ablation",
        title="Congestion actuator: CPU cap vs HW rate limit",
        headers=["actuator", "victim mean", "±", "intf CPU %", "intf served"],
        rows=rows,
        notes=(
            "equal victim protection; HW limiting leaves the interferer "
            "its CPU (it spins polling) while capping only its bandwidth"
        ),
        extra=extra,
    )


def ablation_fanin_scaling(seed: int = 7) -> FigureResult:
    """N:1 fan-in: one trading server VM, N client VMs over an SRQ.

    The paper's BenchEx description (§IV) is many clients against one
    exchange server with FCFS semantics; this sweep shows the server
    saturating and per-client latency growing with queue depth.
    """
    from repro.benchex.fanin import BenchExFanIn

    sim_s = 0.5 * scale_factor()
    rows = []
    extra: Dict[str, object] = {}
    for n in (1, 2, 4, 6):
        bed = Testbed.paper_testbed(seed=seed)
        s, c = bed.node("server-host"), bed.node("client-host")
        cfg = BenchExConfig(name=f"fan{n}", warmup_requests=30)
        fan = BenchExFanIn(bed, s, c, cfg, n_clients=n)

        def deploy(env, fan=fan):
            yield from fan.deploy()
            fan.start()

        bed.env.process(deploy(bed.env), name="deploy")
        bed.env.run(until=int(sim_s * SEC))
        lat = fan.client_latencies_us()
        rate = fan.server.requests_served / (bed.env.now / SEC)
        rows.append([n, float(lat.mean()), float(np.percentile(lat, 99)), rate])
        extra[str(n)] = {"mean_us": float(lat.mean()), "rate_hz": rate}
    return FigureResult(
        figure="Ablation",
        title="Fan-in scaling: clients per trading server (client latency, us)",
        headers=["clients", "mean", "p99", "server req/s"],
        rows=rows,
        notes="closed-loop clients: latency ~ N x service time once saturated",
        extra=extra,
    )


def ablation_federation(seed: int = 7) -> FigureResult:
    """Single-host vs federated (both-hosts) ResEx deployment.

    The interferer's inbound requests cross the server host's ingress
    port, which a server-side-only controller cannot throttle; a
    federated deployment prices the interferer's client VM too.
    """
    from repro.resex import (
        Follower,
        IOShares,
        ResExController,
        ResExFederation,
    )
    from repro.experiments.scenarios import REPORTING_SLA as SLA

    sim_s = 1.5 * scale_factor()
    rows = []
    extra: Dict[str, object] = {}
    for label, federated in (("server-side only", False), ("federated", True)):
        bed = Testbed.paper_testbed(seed=seed)
        s, c = bed.node("server-host"), bed.node("client-host")
        rep = BenchExPair(
            bed, s, c, BenchExConfig(name="rep", warmup_requests=50),
            with_agent=True,
        )
        intf = BenchExPair(bed, s, c, INTERFERER_2MB)
        ctl = ResExController(s, IOShares())
        ctl.monitor(rep.server_dom, agent=rep.agent, sla=SLA)
        ctl.monitor(intf.server_dom)
        ctl.start()
        if federated:
            fctl = ResExController(c, Follower())
            fctl.monitor(intf.client_dom)
            fctl.monitor(rep.client_dom)
            fctl.start()
            fed = ResExFederation(bed.env)
            fed.link(
                (ctl, intf.server_dom.domid), (fctl, intf.client_dom.domid)
            )
            fed.start()
        run_pairs(bed, [rep, intf], until_ns=int(sim_s * SEC))
        lat = rep.server.latencies_us()
        rows.append([label, float(lat.mean()), float(lat.std())])
        extra[label] = float(lat.mean())
    return FigureResult(
        figure="Ablation",
        title="Single-host vs federated ResEx (victim latency, us)",
        headers=["deployment", "total", "±"],
        rows=rows,
        notes="federation also throttles the interferer's inbound requests",
        extra=extra,
    )


ALL_ABLATIONS = {
    "depletion": ablation_depletion_modes,
    "weights": ablation_weighted_shares,
    "completion": ablation_completion_mode,
    "sampling": ablation_sampling_interval,
    "reaction": ablation_reaction_time,
    "linkmodel": ablation_link_models,
    "fanin": ablation_fanin_scaling,
    "actuators": ablation_actuators,
    "federation": ablation_federation,
}
