"""Multi-seed replication: confidence intervals for scenario outcomes.

One deterministic run is a single sample of the (seeded) stochastic
workload.  For robustness claims — "IOShares keeps the victim within X
of base" — replicate the scenario across seeds and report the spread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.experiments.scenarios import run_chaos_scenario, run_scenario


@dataclass(frozen=True)
class Replication:
    """Aggregate of one metric across seeds."""

    name: str
    seeds: tuple
    values: tuple

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        return float(np.std(self.values, ddof=1)) if len(self.values) > 1 else 0.0

    @property
    def minimum(self) -> float:
        return float(np.min(self.values))

    @property
    def maximum(self) -> float:
        return float(np.max(self.values))

    def ci95_halfwidth(self) -> float:
        """Normal-approximation 95% confidence half-width of the mean."""
        n = len(self.values)
        if n < 2:
            return float("nan")
        return 1.96 * self.std / np.sqrt(n)

    def __repr__(self) -> str:
        return (
            f"<Replication {self.name!r} {self.mean:.1f} "
            f"+/- {self.ci95_halfwidth():.1f} (n={len(self.values)})>"
        )


def replicate_scenario(
    name: str,
    seeds: Sequence[int],
    **scenario_kwargs,
) -> Replication:
    """Run the same scenario across ``seeds``; aggregates the mean
    server-side total latency (us)."""
    if not seeds:
        raise ConfigError("at least one seed is required")
    values: List[float] = []
    for seed in seeds:
        result = run_scenario(f"{name}-s{seed}", seed=seed, **scenario_kwargs)
        values.append(result.breakdown.total_mean)
    return Replication(name=name, seeds=tuple(seeds), values=tuple(values))


def replicate_comparison(
    seeds: Sequence[int],
    configurations: Dict[str, dict],
) -> Dict[str, Replication]:
    """Replicate several configurations over the same seeds.

    ``configurations`` maps a label to run_scenario keyword arguments.
    """
    return {
        label: replicate_scenario(label, seeds, **kwargs)
        for label, kwargs in configurations.items()
    }


#: Resilience metrics :func:`replicate_chaos` aggregates per seed.
CHAOS_METRICS = ("excursion_us_s", "worst_ttr_ms", "recovered")


def replicate_chaos(
    name: str,
    seeds: Sequence[int],
    *,
    campaign: str,
    **chaos_kwargs,
) -> Dict[str, Replication]:
    """Replicate a chaos scenario across seeds; aggregate resilience.

    Runs :func:`~repro.experiments.scenarios.run_chaos_scenario` once
    per seed (the campaign preset is rebuilt per seed, so stochastic
    campaigns vary while scripted ones repeat) and returns one
    :class:`Replication` per metric in :data:`CHAOS_METRICS`:

    * ``excursion_us_s`` — total latency-excursion area of the run;
    * ``worst_ttr_ms`` — slowest recovery (``inf`` when a fault window
      never healed, so the mean stays honest about non-recovery);
    * ``recovered`` — 1.0/0.0 indicator that every window healed.
    """
    if not seeds:
        raise ConfigError("at least one seed is required")
    series: Dict[str, List[float]] = {m: [] for m in CHAOS_METRICS}
    for seed in seeds:
        chaos = run_chaos_scenario(
            name, campaign=campaign, seed=seed, **chaos_kwargs
        )
        report = chaos.report
        worst = report.worst_ttr_ms
        series["excursion_us_s"].append(report.total_excursion_us_s)
        series["worst_ttr_ms"].append(
            float("inf") if worst is None else worst
        )
        series["recovered"].append(1.0 if report.recovered_all else 0.0)
    return {
        metric: Replication(
            name=f"{name}/{metric}",
            seeds=tuple(seeds),
            values=tuple(values),
        )
        for metric, values in series.items()
    }
