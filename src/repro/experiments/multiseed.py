"""Multi-seed replication: confidence intervals for scenario outcomes.

One deterministic run is a single sample of the (seeded) stochastic
workload.  For robustness claims — "IOShares keeps the victim within X
of base" — replicate the scenario across seeds and report the spread.

Replication is embarrassingly parallel, so every helper here runs
through the :mod:`repro.parallel` engine: ``jobs=`` fans the seeds out
to a process pool, ``cache=`` short-circuits cells already computed
for this package version.  Serial (``jobs=1``) and parallel execution
produce **bit-identical** :class:`Replication` values — cells merge in
submission order and each cell is a self-contained seeded simulation.

The ``sweep_*`` variants return the folded
:class:`~repro.parallel.SweepReport` alongside the statistics; the
``replicate_*`` functions keep their historical signatures and raise
:class:`~repro.errors.SweepError` if any cell failed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError, SweepError
from repro.parallel import SweepJob, SweepReport, SweepResult, run_sweep


@dataclass(frozen=True)
class Replication:
    """Aggregate of one metric across seeds.

    Chaos series may legitimately contain ``inf`` (``worst_ttr_ms``
    when a fault window never healed).  Order statistics (`median`,
    `percentile`, `minimum`, `maximum`) are taken over the full
    series; the moment statistics (`std`, `ci95_halfwidth`) are
    computed over the *finite* subsample and reported next to
    :attr:`n_nonfinite` rather than silently propagating ``inf``/NaN.
    """

    name: str
    seeds: tuple
    values: tuple

    @property
    def mean(self) -> float:
        """Mean over the full series — ``inf`` stays honest here."""
        return float(np.mean(self.values))

    @property
    def finite_values(self) -> tuple:
        """The finite subsample (moment statistics are taken on it)."""
        return tuple(v for v in self.values if math.isfinite(v))

    @property
    def n_nonfinite(self) -> int:
        """How many samples are ``inf``/NaN (e.g. never-recovered runs)."""
        return len(self.values) - len(self.finite_values)

    @property
    def finite_mean(self) -> float:
        """Mean of the finite subsample (NaN when nothing is finite)."""
        finite = self.finite_values
        return float(np.mean(finite)) if finite else float("nan")

    @property
    def std(self) -> float:
        """Sample std (ddof=1) of the finite subsample."""
        finite = self.finite_values
        return float(np.std(finite, ddof=1)) if len(finite) > 1 else 0.0

    @property
    def minimum(self) -> float:
        return float(np.min(self.values))

    @property
    def maximum(self) -> float:
        return float(np.max(self.values))

    @property
    def median(self) -> float:
        """Median of the full series (robust to a minority of infs)."""
        return float(np.median(self.values))

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0-100) of the full series."""
        if not 0.0 <= p <= 100.0:
            raise ConfigError(f"percentile must be in [0, 100], got {p}")
        return float(np.percentile(self.values, p))

    def ci95_halfwidth(self) -> float:
        """Normal-approximation 95% confidence half-width of the mean.

        Computed over the finite subsample; NaN when fewer than two
        finite samples exist.  Check :attr:`n_nonfinite` to see how
        many samples the interval excludes.
        """
        finite = self.finite_values
        n = len(finite)
        if n < 2:
            return float("nan")
        return 1.96 * self.std / np.sqrt(n)

    def __repr__(self) -> str:
        suffix = (
            f" [{self.n_nonfinite} non-finite]" if self.n_nonfinite else ""
        )
        center = self.finite_mean if self.n_nonfinite else self.mean
        return (
            f"<Replication {self.name!r} {center:.1f} "
            f"+/- {self.ci95_halfwidth():.1f} (n={len(self.values)}){suffix}>"
        )


def _check_complete(result: SweepResult, what: str) -> None:
    failures = result.failed()
    if failures:
        details = [(c.job.label, c.error or "") for c in failures]
        summary = "; ".join(
            f"{label}: {err.splitlines()[0] if err else 'unknown'}"
            for label, err in details
        )
        raise SweepError(
            f"{len(failures)}/{len(result.cells)} {what} cells failed: "
            f"{summary}",
            cell_errors=details,
        )


def sweep_scenario(
    name: str,
    seeds: Sequence[int],
    *,
    jobs: int = 1,
    cache=None,
    telemetry=None,
    **scenario_kwargs,
) -> Tuple[Replication, SweepReport]:
    """Replicate one scenario across ``seeds`` through the sweep engine.

    Returns the :class:`Replication` of the mean server-side total
    latency (us) plus the engine's :class:`SweepReport`.
    """
    if not seeds:
        raise ConfigError("at least one seed is required")
    cells = [
        SweepJob("scenario", name, int(seed), dict(scenario_kwargs))
        for seed in seeds
    ]
    result = run_sweep(cells, workers=jobs, cache=cache, telemetry=telemetry)
    _check_complete(result, "scenario")
    return (
        Replication(
            name=name,
            seeds=tuple(seeds),
            values=result.values("total_mean"),
        ),
        result.report,
    )


def replicate_scenario(
    name: str,
    seeds: Sequence[int],
    *,
    jobs: int = 1,
    cache=None,
    **scenario_kwargs,
) -> Replication:
    """Run the same scenario across ``seeds``; aggregates the mean
    server-side total latency (us).

    ``jobs`` fans the seeds out to a process pool; ``cache`` (a
    directory or :class:`~repro.parallel.ResultCache`) reuses cells
    already computed for this package version.  Both knobs change only
    wall-clock time, never values.
    """
    replication, _ = sweep_scenario(
        name, seeds, jobs=jobs, cache=cache, **scenario_kwargs
    )
    return replication


def sweep_comparison(
    seeds: Sequence[int],
    configurations: Dict[str, dict],
    *,
    jobs: int = 1,
    cache=None,
    telemetry=None,
) -> Tuple[Dict[str, Replication], SweepReport]:
    """Replicate several configurations over the same seeds, in one
    sweep — all (configuration, seed) cells share a single pool, so
    the fan-out is ``len(configurations) * len(seeds)`` wide.
    """
    if not seeds:
        raise ConfigError("at least one seed is required")
    cells: List[SweepJob] = []
    for label, kwargs in configurations.items():
        for seed in seeds:
            cells.append(SweepJob("scenario", label, int(seed), dict(kwargs)))
    result = run_sweep(cells, workers=jobs, cache=cache, telemetry=telemetry)
    _check_complete(result, "comparison")
    n = len(seeds)
    out: Dict[str, Replication] = {}
    for i, label in enumerate(configurations):
        block = result.cells[i * n:(i + 1) * n]
        out[label] = Replication(
            name=label,
            seeds=tuple(seeds),
            values=tuple(c.metrics["total_mean"] for c in block),
        )
    return out, result.report


def replicate_comparison(
    seeds: Sequence[int],
    configurations: Dict[str, dict],
    *,
    jobs: int = 1,
    cache=None,
) -> Dict[str, Replication]:
    """Replicate several configurations over the same seeds.

    ``configurations`` maps a label to run_scenario keyword arguments.
    """
    out, _ = sweep_comparison(
        seeds, configurations, jobs=jobs, cache=cache
    )
    return out


#: Resilience metrics :func:`replicate_chaos` aggregates per seed.
CHAOS_METRICS = ("excursion_us_s", "worst_ttr_ms", "recovered")


def sweep_chaos(
    name: str,
    seeds: Sequence[int],
    *,
    campaign: str,
    jobs: int = 1,
    cache=None,
    telemetry=None,
    **chaos_kwargs,
) -> Tuple[Dict[str, Replication], SweepReport]:
    """Replicate a chaos scenario across seeds through the sweep engine."""
    if not seeds:
        raise ConfigError("at least one seed is required")
    spec = dict(chaos_kwargs)
    spec["campaign"] = campaign
    cells = [SweepJob("chaos", name, int(seed), spec) for seed in seeds]
    result = run_sweep(cells, workers=jobs, cache=cache, telemetry=telemetry)
    _check_complete(result, "chaos")
    out = {
        metric: Replication(
            name=f"{name}/{metric}",
            seeds=tuple(seeds),
            values=result.values(metric),
        )
        for metric in CHAOS_METRICS
    }
    return out, result.report


def replicate_chaos(
    name: str,
    seeds: Sequence[int],
    *,
    campaign: str,
    jobs: int = 1,
    cache=None,
    **chaos_kwargs,
) -> Dict[str, Replication]:
    """Replicate a chaos scenario across seeds; aggregate resilience.

    Runs :func:`~repro.experiments.scenarios.run_chaos_scenario` once
    per seed (the campaign preset is rebuilt per seed, so stochastic
    campaigns vary while scripted ones repeat) and returns one
    :class:`Replication` per metric in :data:`CHAOS_METRICS`:

    * ``excursion_us_s`` — total latency-excursion area of the run;
    * ``worst_ttr_ms`` — slowest recovery (``inf`` when a fault window
      never healed; the mean stays honest about non-recovery while
      ``std``/``ci95_halfwidth`` report the finite subsample next to
      :attr:`Replication.n_nonfinite`);
    * ``recovered`` — 1.0/0.0 indicator that every window healed.
    """
    out, _ = sweep_chaos(
        name, seeds, campaign=campaign, jobs=jobs, cache=cache, **chaos_kwargs
    )
    return out
