"""Experiment harness: canonical testbed, scenarios, per-figure runs."""

from repro.experiments.figures import ALL_FIGURES, FigureResult, scale_factor
from repro.experiments.multiseed import (
    CHAOS_METRICS,
    Replication,
    replicate_chaos,
    replicate_comparison,
    replicate_scenario,
    sweep_chaos,
    sweep_comparison,
    sweep_scenario,
)
from repro.experiments.cluster import (
    CLUSTER_SPECS,
    ClusterResult,
    ClusterSetup,
    ClusterSpec,
    build_cluster,
    cluster_spec,
    run_cluster,
)
from repro.experiments.suite import (
    run_ablation_set,
    run_cluster_set,
    run_figure_set,
    run_registry_set,
    run_service_set,
)
from repro.supervise import resume_sweep, supervised_sweep
from repro.experiments.platform import Node, Testbed
from repro.experiments.scenarios import (
    CHAOS_SCENARIOS,
    REPORTING_SLA,
    ChaosResult,
    ScenarioResult,
    ScenarioSetup,
    build_scenario,
    default_fault_engine,
    run_chaos_scenario,
    run_scenario,
)

__all__ = [
    "ALL_FIGURES",
    "CHAOS_METRICS",
    "CHAOS_SCENARIOS",
    "CLUSTER_SPECS",
    "ChaosResult",
    "ClusterResult",
    "ClusterSetup",
    "ClusterSpec",
    "FigureResult",
    "Node",
    "REPORTING_SLA",
    "Replication",
    "ScenarioResult",
    "ScenarioSetup",
    "Testbed",
    "build_cluster",
    "build_scenario",
    "cluster_spec",
    "default_fault_engine",
    "replicate_chaos",
    "replicate_comparison",
    "replicate_scenario",
    "resume_sweep",
    "run_ablation_set",
    "run_chaos_scenario",
    "run_cluster",
    "run_cluster_set",
    "run_figure_set",
    "run_registry_set",
    "run_scenario",
    "run_service_set",
    "scale_factor",
    "supervised_sweep",
    "sweep_chaos",
    "sweep_comparison",
    "sweep_scenario",
]
