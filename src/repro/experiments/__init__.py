"""Experiment harness: canonical testbed, scenarios, per-figure runs."""

from repro.experiments.figures import ALL_FIGURES, FigureResult, scale_factor
from repro.experiments.multiseed import (
    Replication,
    replicate_comparison,
    replicate_scenario,
)
from repro.experiments.platform import Node, Testbed
from repro.experiments.scenarios import (
    REPORTING_SLA,
    ScenarioResult,
    run_scenario,
)

__all__ = [
    "ALL_FIGURES",
    "FigureResult",
    "Node",
    "REPORTING_SLA",
    "Replication",
    "ScenarioResult",
    "Testbed",
    "replicate_comparison",
    "replicate_scenario",
    "run_scenario",
    "scale_factor",
]
