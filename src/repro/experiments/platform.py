"""Canonical testbed construction.

Builds the paper's experimental platform (§VII): two Dell PowerEdge
1950 servers — one 8-core 1.86 GHz, one 4-core 2.66 GHz — each with a
Mellanox HCA, connected through a Xsigo VP780 10 Gbps switch; Xen with
one VCPU per guest pinned to its own core; OFED-style para-virtual IB
drivers (backend in dom0, VMM-bypass fast path).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from repro.errors import ConfigError
from repro.hw.fabric import FluidFabric
from repro.hw.host import Host
from repro.hw.topology import Topology
from repro.ib.hca import HCA
from repro.ib.params import DEFAULT_FABRIC_PARAMS, FabricParams
from repro.sim.core import Environment
from repro.sim.rng import RngRegistry
from repro.xen.domain import Domain
from repro.xen.hypervisor import Hypervisor
from repro.xen.splitdriver import IBBackend, IBFrontend
from repro.xen.xenstat import XenStat


class Node:
    """One host with its hypervisor, HCA, backend driver and XenStat."""

    def __init__(
        self,
        env: Environment,
        fabric: FluidFabric,
        name: str,
        ncpus: int,
        cpu_freq_hz: float,
        params: FabricParams,
        topology: Optional[Topology] = None,
    ) -> None:
        self.host = Host(name, ncpus=ncpus, cpu_freq_hz=cpu_freq_hz)
        if topology is not None:
            # Wire the host into the topology *before* the HCA exists:
            # the HCA only direct-attaches hosts with no ports yet.
            topology.attach(self.host)
        self.hypervisor = Hypervisor(env, self.host)
        self.hca = HCA(env, self.host, fabric, params)
        self.backend = IBBackend(self.hca, self.hypervisor.dom0)
        self.xenstat = XenStat(self.hypervisor)
        self._next_pcpu = 1  # pcpu 0 is dom0's

    def create_guest(
        self,
        name: str,
        pcpus: Optional[Sequence[int]] = None,
        weight: int = 256,
        cap_percent: int = 100,
    ) -> Domain:
        """Create a guest VM; defaults to pinning one VCPU on the next
        free core (the paper's one-core-per-VM policy).  When the host
        runs out of dedicated cores, guests wrap around and share them
        under the credit scheduler — how an oversubscribed client
        machine actually behaves."""
        if pcpus is None:
            ncpus = len(self.host.cpus)
            slot = self._next_pcpu
            if slot >= ncpus:
                # Wrap over the guest cores (never back onto dom0's core 0).
                slot = 1 + (slot - 1) % (ncpus - 1) if ncpus > 1 else 0
            pcpus = [slot]
            self._next_pcpu += 1
        return self.hypervisor.create_domain(
            name, pcpus=pcpus, weight=weight, cap_percent=cap_percent
        )

    def frontend(self, domain: Domain) -> IBFrontend:
        return IBFrontend(domain, self.backend)

    def __repr__(self) -> str:
        return f"<Node {self.host.name}>"


class Testbed:
    """The full two-(or more-)host platform."""

    #: Not a pytest test class despite the name.
    __test__ = False

    def __init__(
        self,
        seed: int = 0,
        params: FabricParams = DEFAULT_FABRIC_PARAMS,
        topology_factory: Optional[Callable[[FluidFabric], Topology]] = None,
    ) -> None:
        self.env = Environment()
        self.rng = RngRegistry(seed)
        self.params = params
        self.fabric = FluidFabric(self.env)
        #: Cluster wiring every added node is attached to; ``None``
        #: keeps the paper's direct two-host crossbar semantics (and
        #: its byte-identical goldens).
        self.topology: Optional[Topology] = (
            topology_factory(self.fabric) if topology_factory is not None
            else None
        )
        self.nodes: Dict[str, Node] = {}

    def add_node(
        self, name: str, ncpus: int = 8, cpu_freq_hz: float = 1.86e9
    ) -> Node:
        if name in self.nodes:
            raise ConfigError(f"duplicate node name {name!r}")
        node = Node(
            self.env, self.fabric, name, ncpus, cpu_freq_hz, self.params,
            topology=self.topology,
        )
        self.nodes[name] = node
        return node

    def node(self, name: str) -> Node:
        try:
            return self.nodes[name]
        except KeyError:
            raise ConfigError(f"no such node: {name!r}") from None

    @classmethod
    def paper_testbed(
        cls, seed: int = 0, params: FabricParams = DEFAULT_FABRIC_PARAMS
    ) -> "Testbed":
        """The CLUSTER'11 testbed: server node + client node.

        The paper's client machine has 4 cores (2x dual-core Xeon), but
        its stated methodology gives *every* VM its own core so that no
        result contains CPU-scheduling noise (§II).  With dom0 plus up
        to four client VMs that does not fit in 4 cores, so the client
        host is widened to 8 — preserving the methodology rather than
        the part number (see DESIGN.md).
        """
        bed = cls(seed=seed, params=params)
        bed.add_node("server-host", ncpus=8, cpu_freq_hz=1.86e9)
        bed.add_node("client-host", ncpus=8, cpu_freq_hz=2.66e9)
        return bed
