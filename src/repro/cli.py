"""Command-line interface: run figures, ad-hoc scenarios and traces.

Examples::

    python -m repro figures --list
    python -m repro figures fig1 headline
    python -m repro figures --all --scale full --out results/
    python -m repro scenario --interferer 2MB --policy ioshares --sim-s 2
    python -m repro trace fig1 -o fig1-trace.json
    python -m repro policies

Status messages go to stderr through the shared telemetry logger, so
``--quiet`` / ``--verbose`` behave uniformly across subcommands while
stdout stays clean for experiment output.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys
from typing import List, Optional

from repro._version import __version__
from repro.errors import ReproError
from repro.telemetry import configure as configure_logging
from repro.telemetry import get_logger
from repro.units import KiB, MiB


def _invariant_scope(mode: str):
    """A context manager activating invariant guards for a command."""
    from contextlib import nullcontext

    from repro.sim import invariants

    return invariants.activate(mode) if mode != "off" else nullcontext()


def _parse_size(text: str) -> int:
    """'64KB' / '2MB' / '1048576' -> bytes."""
    t = text.strip().upper()
    try:
        for suffix, mult in (("KB", KiB), ("KIB", KiB), ("MB", MiB), ("MIB", MiB)):
            if t.endswith(suffix):
                return int(float(t[: -len(suffix)]) * mult)
        return int(t)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid size {text!r} (expected e.g. '64KB', '2MB' or bytes)"
        ) from None


def _format_size(nbytes) -> str:
    """Inverse of :func:`_parse_size` for display ('2MB', '64KB', '123')."""
    if isinstance(nbytes, str) or nbytes is None:
        return str(nbytes)
    if nbytes and nbytes % MiB == 0:
        return f"{nbytes // MiB}MB"
    if nbytes and nbytes % KiB == 0:
        return f"{nbytes // KiB}KB"
    return str(nbytes)


def _run_experiment_set(
    args: argparse.Namespace, registry_name: str, registry: dict
) -> int:
    if args.list:
        for name, fn in registry.items():
            doc = (fn.__doc__ or "").strip().splitlines()
            print(f"{name:10s} {doc[0] if doc else ''}")
        return 0

    names = list(registry) if args.all else args.names
    if not names:
        print(
            "nothing selected (use --all, --list, or name experiments)",
            file=sys.stderr,
        )
        return 2
    unknown = [n for n in names if n not in registry]
    if unknown:
        print(f"unknown experiments: {unknown}; try --list", file=sys.stderr)
        return 2

    if args.scale:
        os.environ["REPRO_SCALE"] = args.scale
    out_dir: Optional[pathlib.Path] = None
    if args.out:
        out_dir = pathlib.Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)

    log = get_logger()
    jobs = getattr(args, "jobs", 1)
    if jobs > 1:
        from repro.experiments.suite import run_registry_set

        log.debug(f"fanning {len(names)} experiments to {jobs} workers...")
        results, report = run_registry_set(
            registry_name, names, seed=args.seed, jobs=jobs
        )
        log.debug(report.render())
    else:
        results = None

    for name in names:
        if results is not None:
            result = results[name]
        else:
            log.debug(f"running {name}...")
            result = registry[name](seed=args.seed)
        text = result.render()
        print(text)
        print()
        if out_dir is not None:
            (out_dir / f"{name}.txt").write_text(text + "\n")
            log.debug(f"saved {out_dir / f'{name}.txt'}")
            if args.json:
                from repro.analysis import write_figure_json

                write_figure_json(out_dir / f"{name}.json", result)
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.experiments import ALL_FIGURES

    return _run_experiment_set(args, "figures", ALL_FIGURES)


def _cmd_ablations(args: argparse.Namespace) -> int:
    from repro.experiments.ablations import ALL_ABLATIONS

    return _run_experiment_set(args, "ablations", ALL_ABLATIONS)


def _cmd_scenario(args: argparse.Namespace) -> int:
    from repro.analysis import render_table
    from repro.benchex import BenchExConfig
    from repro.experiments import run_scenario

    interferer = None
    if args.interferer:
        interferer = BenchExConfig(
            name="interferer",
            buffer_bytes=args.interferer,
            pipeline_depth=args.interferer_depth,
        )
    with _invariant_scope(args.invariants) as monitor:
        result = run_scenario(
            "cli",
            interferer=interferer,
            policy=args.policy,
            manual_cap=args.cap,
            n_servers=args.servers,
            sim_s=args.sim_s,
            seed=args.seed,
        )
    if monitor is not None and monitor.tainted:
        log = get_logger()
        log.warning(
            f"invariant guards recorded {len(monitor.violations)} "
            f"violation(s); results are tainted"
        )
    b = result.breakdown
    print(
        render_table(
            ["metric", "value (us)"],
            [
                ["CTime mean", b.ctime_mean],
                ["WTime mean", b.wtime_mean],
                ["PTime mean", b.ptime_mean],
                ["Total mean", b.total_mean],
                ["Total std", b.total_std],
                ["requests", float(b.n)],
            ],
            title=(
                f"Reporting-VM latency "
                f"(interferer={_format_size(args.interferer) if args.interferer else 'none'}, "
                f"policy={args.policy or 'none'}, cap={args.cap or '-'})"
            ),
        )
    )
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    import json as _json

    from repro.analysis import render_table
    from repro.experiments.cluster import CLUSTER_SPECS, run_cluster
    from repro.supervise.manifest import result_digest

    if args.list:
        for name, spec in CLUSTER_SPECS.items():
            print(
                f"{name:20s} {spec.topology:10s} hosts={spec.n_hosts:<4d} "
                f"vms={spec.n_vms:<5d} flows={spec.n_flows:<5d} "
                f"sim_s={spec.sim_s}"
            )
        return 0

    worker_faults = []
    kill = None
    if args.kill_worker:
        from repro.faults import parse_worker_kill

        kill = parse_worker_kill(args.kill_worker)
        worker_faults.append(kill)

    with _invariant_scope(args.invariants) as monitor:
        result = run_cluster(
            args.preset, seed=args.seed, sim_s=args.sim_s,
            shards=args.shards, backend=args.shard_backend,
            coalesce=not args.no_coalesce,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            restore=args.restore,
            worker_faults=worker_faults,
        )
    if kill is not None and kill.fired is None:
        get_logger().warning(
            f"--kill-worker {args.kill_worker} never fired (the run had "
            "fewer barriers than its trigger)"
        )
    tainted = monitor is not None and monitor.tainted
    if tainted:
        get_logger().warning(
            f"invariant guards recorded {len(monitor.violations)} "
            f"violation(s); results are tainted"
        )

    metrics = result.metrics()
    if args.json:
        doc = {
            "preset": args.preset,
            "seed": args.seed,
            "shards": args.shards,
            "tainted": tainted,
            # The canonical digest of the metrics dict: the value the
            # shard differential (serial == N-shard) is held to in CI.
            "digest": result_digest(metrics),
            "metrics": metrics,
        }
        if result.shard_stats is not None:
            doc["shard_stats"] = result.shard_stats.to_dict()
        print(_json.dumps(doc, indent=2, sort_keys=True))
        return 0
    print(
        render_table(
            ["metric", "value"],
            [[k, v] for k, v in sorted(metrics.items())],
            title=(
                f"cluster {args.preset} (seed={args.seed}, "
                f"shards={args.shards})"
            ),
        )
    )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Profile one cluster preset or scenario run."""
    import json as _json

    from repro.analysis.profiling import profile_call, write_collapsed
    from repro.experiments.cluster import CLUSTER_SPECS

    if args.target in CLUSTER_SPECS:
        from repro.experiments.cluster import run_cluster

        def runner():
            # Inline backend: the deterministic profiler only sees this
            # process, and inline is bit-identical to fork.
            return run_cluster(
                args.target, seed=args.seed, sim_s=args.sim_s,
                shards=args.shards,
                backend="inline" if args.shards > 1 else "auto",
            )
    else:
        from repro.experiments.scenarios import run_scenario

        if args.shards > 1:
            print("error: --shards applies to cluster presets only",
                  file=sys.stderr)
            return 2

        def runner():
            kwargs = {}
            if args.sim_s is not None:
                kwargs["sim_s"] = args.sim_s
            return run_scenario(args.target, seed=args.seed, **kwargs)

    _, report = profile_call(runner, top=args.top, memory=args.memory)

    if args.collapsed:
        write_collapsed(report, args.collapsed)
        get_logger().info(
            f"wrote {len(report.collapsed)} collapsed-stack lines to "
            f"{args.collapsed}"
        )
    if args.json:
        print(_json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(f"profile: {args.target} (seed={args.seed})")
        print(report.render(), end="")
    return 0


def _build_service_gateway(args: argparse.Namespace):
    from repro.service import (
        LiveBackend,
        Orchestrator,
        ResExWorld,
        ServiceConfig,
        ServiceGateway,
        SimBackend,
        load_world_snapshot,
    )

    world = None
    if getattr(args, "restore", None):
        # A restored world carries its own (seed, config); the CLI's
        # --slots/--policy/--seed are ignored in favor of the snapshot.
        snap = load_world_snapshot(args.restore)
        world = ResExWorld.restore(snap)
        get_logger().info(
            f"restored world from {args.restore} "
            f"(t={world.now_ns} ns, {len(world.bindings)} tenant(s) bound)"
        )
    config = ServiceConfig(slots=args.slots, policy=args.policy)
    backend_cls = SimBackend if args.mode == "sim" else LiveBackend
    backend = backend_cls(config, seed=args.seed, world=world)
    return ServiceGateway(
        Orchestrator(backend),
        host=args.host,
        port=args.port,
        max_queue=args.max_queue,
        logger=get_logger(),
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the ResEx service gateway until SIGTERM/SIGINT."""
    import asyncio
    import signal

    from repro.service import save_world_snapshot

    gateway = _build_service_gateway(args)

    async def _serve() -> None:
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stop.set)
        await gateway.start()
        # The bound port goes to stdout so scripts can scrape it when
        # asking for an ephemeral port (--port 0).
        print(f"listening {gateway.host}:{gateway.port} mode={args.mode}", flush=True)
        try:
            await stop.wait()
        finally:
            get_logger().info("shutting down service gateway")
            if args.checkpoint:
                # Graceful degradation: refuse new dials, answer what
                # is already queued, then snapshot the served world.
                await gateway.drain()
                snap = gateway.orchestrator.backend.world.snapshot()
                digest = save_world_snapshot(args.checkpoint, snap)
                get_logger().info(
                    f"world checkpoint written to {args.checkpoint} "
                    f"(digest {digest[:12]}..., "
                    f"{snap['in_flight_lost']} in-flight order(s) dropped)"
                )
            await gateway.stop()

    asyncio.run(_serve())
    stats = gateway.stats()
    get_logger().info(
        f"served {stats['requests_served']} requests over "
        f"{stats['sessions_opened']} session(s), "
        f"rejected {stats['requests_rejected']}"
    )
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    """Fire a seeded synthetic load at a running service gateway."""
    import asyncio
    import json as _json

    from repro.service import run_loadgen

    report = asyncio.run(
        run_loadgen(
            args.host,
            args.port,
            requests=args.requests,
            vms=args.vms,
            seed=args.seed,
            arrivals=args.arrivals,
            rate_per_s=args.rate,
            window=args.window,
            connect_retries=args.retries,
        )
    )
    if args.json:
        print(_json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import generate_report

    log = get_logger()
    if args.scale:
        os.environ["REPRO_SCALE"] = args.scale
    text = generate_report(
        seed=args.seed,
        include_ablations=not args.no_ablations,
        progress=log.info,
        jobs=args.jobs,
    )
    if args.output:
        pathlib.Path(args.output).write_text(text)
        log.info(f"report written to {args.output}")
    else:
        print(text)
    return 0


#: Traceable scenario presets.  ``fig1`` runs the paper's interfered
#: configuration *under IOShares management* so every layer of the
#: stack (kernel, credit, hca/fabric, ibmon, resex, benchex) emits
#: spans into the trace.
TRACE_PRESETS = {
    "base": {"interferer": None, "policy": None},
    "interfered": {"interferer": "2MB", "policy": None},
    "managed": {"interferer": "2MB", "policy": "ioshares"},
    "fig1": {"interferer": "2MB", "policy": "ioshares"},
}


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.analysis import write_chrome_trace, write_telemetry_csv
    from repro.benchex import BenchExConfig
    from repro.experiments import run_scenario
    from repro.telemetry import TelemetryBus

    log = get_logger()
    preset = dict(TRACE_PRESETS[args.scenario])
    if args.interferer is not None:
        preset["interferer"] = args.interferer or None
    if args.policy is not None:
        preset["policy"] = args.policy or None

    interferer = None
    size = preset["interferer"]
    if size:
        interferer = BenchExConfig(
            name="interferer",
            buffer_bytes=_parse_size(size) if isinstance(size, str) else size,
        )

    bus = TelemetryBus(kernel_dispatch=args.kernel_events)
    log.debug(
        f"tracing scenario {args.scenario!r} "
        f"(interferer={_format_size(preset['interferer']) if preset['interferer'] else 'none'}, "
        f"policy={preset['policy'] or 'none'}, sim_s={args.sim_s})"
    )
    run_scenario(
        args.scenario,
        interferer=interferer,
        policy=preset["policy"],
        sim_s=args.sim_s,
        seed=args.seed,
        telemetry=bus,
    )

    out = pathlib.Path(args.output or f"trace-{args.scenario}.json")
    n = write_chrome_trace(out, bus)
    layers = bus.categories()
    log.info(
        f"wrote {n} trace records from {len(layers)} layers to {out} "
        "(load in chrome://tracing or https://ui.perfetto.dev)"
    )
    log.debug("layers: " + ", ".join(sorted(layers)))
    if args.csv:
        csv_path = out.with_suffix(".csv")
        write_telemetry_csv(csv_path, bus)
        log.info(f"wrote CSV records to {csv_path}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.analysis import render_table, write_chrome_trace
    from repro.experiments import CHAOS_SCENARIOS, run_chaos_scenario
    from repro.experiments.scenarios import chaos_config
    from repro.faults import degradation_table, preset_campaign
    from repro.telemetry import TelemetryBus
    from repro.units import MS, SEC

    log = get_logger()
    chaos_config(args.scenario)  # validate the preset name up front
    campaign = preset_campaign(args.campaign, args.sim_s, seed=args.seed)

    overrides = {}
    if args.policy is not None:
        overrides["policy"] = args.policy or None
    if args.interferer is not None:
        from repro.benchex import BenchExConfig

        overrides["interferer"] = BenchExConfig(
            name="interferer", buffer_bytes=args.interferer
        )

    if args.dry_run:
        print(
            f"chaos plan: scenario={args.scenario} campaign={campaign.name} "
            f"seed={args.seed} sim_s={args.sim_s}"
        )
        print(
            render_table(
                ["fault", "target", "start (s)", "dur (ms)", "sev"],
                [
                    [
                        f.kind,
                        f.target,
                        f"{f.start_ns / SEC:.3f}",
                        f"{f.duration_ns / MS:.1f}",
                        f"{f.severity:.2f}",
                    ]
                    for f in campaign.faults
                ],
                title=f"campaign schedule ({len(campaign.faults)} faults)",
            )
        )
        return 0

    bus = TelemetryBus() if args.trace else None
    if args.compare:
        reports = {}
        for variant, preset in sorted(CHAOS_SCENARIOS.items()):
            if preset["policy"] is None:
                continue
            log.debug(f"running chaos variant {variant}...")
            chaos = run_chaos_scenario(
                variant,
                campaign=campaign,
                sim_s=args.sim_s,
                seed=args.seed,
                **overrides,
            )
            reports[chaos.report.policy] = chaos.report
        print(degradation_table(reports))
        return 0

    log.debug(
        f"running chaos scenario {args.scenario!r} "
        f"(campaign={campaign.name}, sim_s={args.sim_s})"
    )
    with _invariant_scope(args.invariants) as monitor:
        chaos = run_chaos_scenario(
            args.scenario,
            campaign=campaign,
            sim_s=args.sim_s,
            seed=args.seed,
            telemetry=bus,
            **overrides,
        )
    tainted = monitor is not None and monitor.tainted
    if args.json:
        import json

        doc = chaos.report.to_dict()
        if monitor is not None:
            doc["integrity"] = {
                "tainted": tainted,
                "invariant_mode": args.invariants,
                "violations": monitor.to_dicts(),
            }
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(chaos.report.render())
    if tainted:
        log.warning(
            f"invariant guards recorded {len(monitor.violations)} "
            f"violation(s); results are tainted"
        )
    if args.trace:
        out = pathlib.Path(args.trace)
        n = write_chrome_trace(out, bus)
        log.info(f"wrote {n} trace records to {out}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import (
        WORKLOADS,
        render_benchmarks,
        run_benchmarks,
        write_bench_json,
    )

    if args.list:
        for name, (_fn, description) in WORKLOADS.items():
            print(f"{name:22s} {description}")
        return 0
    log = get_logger()
    try:
        doc = run_benchmarks(
            names=args.names or None, rounds=args.rounds, progress=log.debug
        )
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    print(render_benchmarks(doc))
    if args.output:
        write_bench_json(args.output, doc)
        log.info(f"benchmark document written to {args.output}")
    return 0


def _parse_seeds(text: str) -> List[int]:
    """'8' -> seeds 0..7; '3:7' -> [3..6]; '1,5,9' -> that list."""
    t = text.strip()
    try:
        if ":" in t:
            lo, hi = t.split(":", 1)
            seeds = list(range(int(lo), int(hi)))
        elif "," in t:
            seeds = [int(x) for x in t.split(",") if x.strip()]
        else:
            seeds = list(range(int(t)))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid seed spec {text!r} (expected e.g. '8', '3:7' or '1,5,9')"
        ) from None
    if not seeds:
        raise argparse.ArgumentTypeError(f"seed spec {text!r} selects no seeds")
    return seeds


def _metrics_json(metrics: dict) -> dict:
    return {
        key: {
            "values": list(rep.values),
            "mean": rep.mean,
            "std": rep.std,
            "median": rep.median,
            "ci95_halfwidth": rep.ci95_halfwidth(),
            "n_nonfinite": rep.n_nonfinite,
        }
        for key, rep in metrics.items()
    }


def _render_metrics_table(metrics: dict, title: str) -> str:
    from repro.analysis import render_table

    rows = [
        [
            key,
            rep.mean,
            rep.ci95_halfwidth(),
            rep.median,
            rep.minimum,
            rep.maximum,
            float(rep.n_nonfinite),
        ]
        for key, rep in metrics.items()
    ]
    return render_table(
        ["metric", "mean", "ci95", "median", "min", "max", "n inf"],
        rows,
        title=title,
    )


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.errors import SweepError
    from repro.experiments.multiseed import (
        CHAOS_METRICS,
        sweep_chaos,
        sweep_scenario,
    )

    log = get_logger()
    cache = None if args.no_cache else args.cache_dir
    kwargs = {"sim_s": args.sim_s}
    if args.interferer:
        from repro.benchex import BenchExConfig

        kwargs["interferer"] = BenchExConfig(
            name="interferer", buffer_bytes=args.interferer
        )
    if args.policy is not None:
        kwargs["policy"] = args.policy or None

    if args.supervise or args.resume:
        return _run_supervised_sweep(args, cache, kwargs, log)

    log.debug(
        f"sweeping {args.name!r} over {len(args.seeds)} seeds "
        f"(jobs={args.jobs}, cache={cache or 'off'})"
    )
    try:
        with _invariant_scope(args.invariants):
            if args.campaign:
                replications, report = sweep_chaos(
                    args.name,
                    args.seeds,
                    campaign=args.campaign,
                    jobs=args.jobs,
                    cache=cache,
                    **kwargs,
                )
                metrics = {m: replications[m] for m in CHAOS_METRICS}
            else:
                replication, report = sweep_scenario(
                    args.name, args.seeds, jobs=args.jobs, cache=cache, **kwargs
                )
                metrics = {"total_mean": replication}
    except SweepError as exc:
        if args.json:
            import json

            print(
                json.dumps(
                    {
                        "error": str(exc).splitlines()[0],
                        "code": exc.code,
                        "cell_errors": [
                            {
                                "label": label,
                                "error": err.splitlines()[0] if err else "",
                            }
                            for label, err in exc.cell_errors
                        ],
                    },
                    indent=2,
                    sort_keys=True,
                )
            )
            return exc.exit_code
        raise

    if args.json:
        import json

        doc = {
            "name": args.name,
            "campaign": args.campaign,
            "seeds": args.seeds,
            "jobs": args.jobs,
            "metrics": _metrics_json(metrics),
            "report": report.to_dict(),
        }
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(
            _render_metrics_table(
                metrics,
                f"sweep {args.name!r} x{len(args.seeds)} seeds"
                + (f" (campaign {args.campaign})" if args.campaign else ""),
            )
        )
        print(report.render())
    return 0


def _run_supervised_sweep(
    args: argparse.Namespace, cache, kwargs: dict, log
) -> int:
    """``repro sweep --supervise`` / ``--resume``: the watchdog runtime."""
    from repro.errors import SweepError
    from repro.experiments.multiseed import CHAOS_METRICS, Replication
    from repro.parallel import SweepJob
    from repro.supervise import (
        SupervisePolicy,
        resume_sweep,
        supervised_sweep,
    )

    policy = SupervisePolicy(
        timeout_s=args.timeout_s,
        stall_s=args.stall_s,
        retries=args.retries,
    )
    if args.resume:
        log.debug(f"resuming run {args.resume} from {args.run_dir}...")
        sup = resume_sweep(
            args.resume,
            run_dir=args.run_dir,
            policy=policy,
            workers=args.jobs,
            cache=cache,
            logger=log,
            retry_quarantined=args.retry_quarantined,
        )
    else:
        if args.campaign:
            spec = dict(kwargs)
            spec["campaign"] = args.campaign
            jobs = [
                SweepJob("chaos", args.name, int(s), spec) for s in args.seeds
            ]
        else:
            jobs = [
                SweepJob("scenario", args.name, int(s), dict(kwargs))
                for s in args.seeds
            ]
        log.debug(
            f"supervised sweep of {len(jobs)} cells "
            f"(jobs={args.jobs}, retries={policy.retries}, "
            f"timeout={policy.timeout_s or 'off'}, "
            f"stall={policy.stall_s or 'off'}, "
            f"invariants={args.invariants})"
        )
        sup = supervised_sweep(
            jobs,
            run_dir=args.run_dir,
            run_id=args.run_id,
            policy=policy,
            workers=args.jobs,
            cache=cache,
            logger=log,
            invariant_mode=args.invariants,
        )
    log.info(f"run {sup.run_id}: manifest at {sup.manifest_path}")

    chaos = any(c.job.kind == "chaos" for c in sup.cells)
    metric_names = CHAOS_METRICS if chaos else ("total_mean",)
    metrics = {}
    if sup.complete:
        seeds = tuple(c.job.seed for c in sup.cells)
        for m in metric_names:
            metrics[m] = Replication(
                name=m,
                seeds=seeds,
                values=tuple(c.metrics[m] for c in sup.cells),
            )

    integrity = sup.integrity()
    if args.json:
        import json

        doc = {
            "name": args.name,
            "campaign": args.campaign,
            "jobs": args.jobs,
            "run_id": sup.run_id,
            "metrics": _metrics_json(metrics),
            "report": sup.report.to_dict(),
            "integrity": integrity,
            "cell_errors": [
                {
                    "label": c.job.label,
                    "attempts": c.attempts,
                    "code": c.error_code,
                    "error": (c.error or "").splitlines()[0],
                }
                for c in sup.cells
                if not c.ok
            ],
        }
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        if metrics:
            print(
                _render_metrics_table(
                    metrics,
                    f"supervised sweep {args.name!r} ({len(sup.cells)} cells)"
                    + (f" (campaign {args.campaign})" if args.campaign else ""),
                )
            )
        print(sup.report.render())
        print(
            f"integrity: complete={integrity['complete']} "
            f"done={integrity['done']}/{integrity['cells']} "
            f"quarantined={integrity['quarantined']} "
            f"tainted={integrity['tainted']} "
            f"retried_attempts={integrity['retried_attempts']}"
        )
        for c in sup.cells:
            if not c.ok:
                print(
                    f"  quarantined {c.job.label} "
                    f"[{c.error_code}, {c.attempts} attempt(s)]: "
                    f"{(c.error or '').splitlines()[0]}"
                )
    return 0 if sup.complete else SweepError.exit_code


def _cmd_policies(_args: argparse.Namespace) -> int:
    from repro.resex import registered_policies

    for name, cls in sorted(registered_policies().items()):
        doc = (cls.__doc__ or "").strip().splitlines()
        print(f"{name:14s} {doc[0] if doc else ''}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ResEx reproduction: run paper figures and scenarios.",
    )
    parser.add_argument("--version", action="version", version=__version__)

    def add_verbosity_args(p: argparse.ArgumentParser, root: bool = False) -> None:
        # On subparsers the flags default to SUPPRESS so a flag given
        # before the subcommand is not clobbered by the sub-parse.
        default = False if root else argparse.SUPPRESS
        p.add_argument(
            "-q",
            "--quiet",
            action="store_true",
            default=default,
            help="suppress status messages (stderr); output still prints",
        )
        p.add_argument(
            "-v",
            "--verbose",
            action="store_true",
            default=default,
            help="show per-step detail messages on stderr",
        )

    add_verbosity_args(parser, root=True)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_experiment_args(p: argparse.ArgumentParser) -> None:
        add_verbosity_args(p)
        p.add_argument("names", nargs="*", help="experiment names (see --list)")
        p.add_argument("--list", action="store_true", help="list experiments")
        p.add_argument("--all", action="store_true", help="run every experiment")
        p.add_argument("--seed", type=int, default=7)
        p.add_argument("--scale", choices=["fast", "full"], default=None)
        p.add_argument("--out", help="directory to save rendered outputs")
        p.add_argument(
            "--json",
            action="store_true",
            help="also write structured JSON next to saved text (with --out)",
        )
        p.add_argument(
            "--jobs",
            type=int,
            default=1,
            help="worker processes to fan experiments out to (default 1)",
        )

    figures = sub.add_parser("figures", help="run paper-figure experiments")
    add_experiment_args(figures)
    figures.set_defaults(func=_cmd_figures)

    ablations = sub.add_parser(
        "ablations", help="run design-choice ablation experiments"
    )
    add_experiment_args(ablations)
    ablations.set_defaults(func=_cmd_ablations)

    scenario = sub.add_parser("scenario", help="run one ad-hoc scenario")
    add_verbosity_args(scenario)
    scenario.add_argument(
        "--interferer",
        type=_parse_size,
        help="interfering VM buffer size (e.g. 2MB); omit for base case",
    )
    scenario.add_argument("--interferer-depth", type=int, default=2)
    scenario.add_argument(
        "--policy",
        help="pricing policy name (see 'repro policies'); omit for none",
    )
    scenario.add_argument(
        "--cap", type=int, help="manual CPU cap for the interfering VM"
    )
    scenario.add_argument("--servers", type=int, default=1)
    scenario.add_argument("--sim-s", type=float, default=1.0)
    scenario.add_argument("--seed", type=int, default=7)
    scenario.add_argument(
        "--invariants",
        choices=["off", "record", "strict"],
        default="off",
        help="runtime invariant guards: record violations, or fail fast "
        "on the first one (default off)",
    )
    scenario.set_defaults(func=_cmd_scenario)

    cluster = sub.add_parser(
        "cluster",
        help="run a cluster-scale preset (leaf-spine / fat-tree topology, "
        "per-rack ResEx controllers, fabric-borne price federation)",
    )
    add_verbosity_args(cluster)
    cluster.add_argument(
        "preset",
        nargs="?",
        default="cluster_smoke",
        help="preset name (see --list); default cluster_smoke",
    )
    cluster.add_argument(
        "--list", action="store_true", help="list registered cluster presets"
    )
    cluster.add_argument("--seed", type=int, default=7)
    cluster.add_argument(
        "--sim-s", type=float, default=None,
        help="override the preset's simulated duration",
    )
    cluster.add_argument(
        "--shards", type=int, default=1,
        help="partition the run across N shard workers along the "
        "topology's domain plan (bit-identical to --shards 1; default 1)",
    )
    cluster.add_argument(
        "--shard-backend",
        choices=["auto", "inline", "fork"],
        default="auto",
        help="shard transport: forked workers or an in-process "
        "round-robin (default auto)",
    )
    cluster.add_argument(
        "--no-coalesce",
        action="store_true",
        help="disable barrier elision: one shard exchange per lookahead "
        "window (execution shape only — bytes are identical either way; "
        "the escape hatch CI's differential compares against)",
    )
    cluster.add_argument(
        "--invariants",
        choices=["off", "record", "strict"],
        default="off",
        help="runtime invariant guards: record violations, or fail fast "
        "on the first one (default off)",
    )
    cluster.add_argument(
        "--checkpoint-dir", metavar="DIR", default=None,
        help="journal barrier-aligned ckpt/1 checkpoints to DIR and arm "
        "in-run worker recovery (needs --shards >= 2)",
    )
    cluster.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="barriers between checkpoint writes (default 8)",
    )
    cluster.add_argument(
        "--restore", action="store_true",
        help="resume from the newest usable checkpoint in "
        "--checkpoint-dir (an empty directory starts fresh)",
    )
    cluster.add_argument(
        "--kill-worker", metavar="SHARD@BARRIER", default=None,
        help="crash-recovery testing: SIGKILL shard SHARD's worker when "
        "the run reaches barrier BARRIER (fork backend)",
    )
    cluster.add_argument(
        "--json", action="store_true",
        help="emit metrics as JSON (includes the 'tainted' flag and the "
        "canonical metrics digest)",
    )
    cluster.set_defaults(func=_cmd_cluster)

    profile = sub.add_parser(
        "profile",
        help="profile a cluster preset or scenario run: per-layer time "
        "buckets (kernel/mailbox/barrier/fabric/model), a hot-spot "
        "table, and flamegraph-ready collapsed stacks",
    )
    add_verbosity_args(profile)
    profile.add_argument(
        "target",
        nargs="?",
        default="cluster_smoke",
        help="cluster preset or scenario name (default cluster_smoke)",
    )
    profile.add_argument("--seed", type=int, default=7)
    profile.add_argument(
        "--sim-s", type=float, default=None,
        help="override the target's simulated duration",
    )
    profile.add_argument(
        "--shards", type=int, default=1,
        help="profile a sharded cluster run (inline backend, so the "
        "profiler sees the workers; default 1)",
    )
    profile.add_argument(
        "--top", type=int, default=25,
        help="hot-spot table length (default 25)",
    )
    profile.add_argument(
        "--memory", action="store_true",
        help="also trace allocations (tracemalloc; slower) and report "
        "peak size plus top allocation sites",
    )
    profile.add_argument(
        "--collapsed", metavar="PATH", default=None,
        help="write flamegraph.pl/speedscope collapsed stacks to PATH",
    )
    profile.add_argument(
        "--json", action="store_true",
        help="emit the bucket table and hot spots as JSON",
    )
    profile.set_defaults(func=_cmd_profile)

    serve = sub.add_parser(
        "serve",
        help="run the ResEx service gateway (live wall-clock epochs or "
        "deterministic sim) until SIGTERM/SIGINT",
    )
    add_verbosity_args(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=7741, help="0 binds an ephemeral port"
    )
    serve.add_argument(
        "--mode",
        choices=["live", "sim"],
        default="live",
        help="clock policy: live wall-clock epochs, or sim virtual time "
        "stepped from request at_ns offsets (default live)",
    )
    serve.add_argument(
        "--slots", type=int, default=8, help="admission capacity (guest slots)"
    )
    serve.add_argument("--policy", default="freemarket")
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument(
        "--max-queue",
        type=int,
        default=256,
        help="per-client request queue depth before overload rejection",
    )
    serve.add_argument(
        "--checkpoint",
        metavar="PATH",
        help="on SIGTERM/SIGINT, drain the gateway and write a "
        "digest-stamped snapshot of the served world to PATH",
    )
    serve.add_argument(
        "--restore",
        metavar="PATH",
        help="start from a world snapshot written by --checkpoint "
        "(overrides --slots/--policy/--seed with the snapshot's own)",
    )
    serve.set_defaults(func=_cmd_serve)

    loadgen = sub.add_parser(
        "loadgen",
        help="fire a seeded open-loop synthetic load at a running "
        "service gateway and print the response-log digest",
    )
    add_verbosity_args(loadgen)
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=7741)
    loadgen.add_argument("--requests", type=int, default=1000)
    loadgen.add_argument(
        "--vms", type=int, default=4, help="tenants admitted up front"
    )
    loadgen.add_argument("--seed", type=int, default=7)
    loadgen.add_argument(
        "--arrivals",
        choices=["constant", "bursty", "diurnal"],
        default="constant",
        help="open-loop arrival process (default constant-rate Poisson)",
    )
    loadgen.add_argument(
        "--rate",
        type=float,
        default=20_000.0,
        help="mean arrival rate in requests/s of virtual time",
    )
    loadgen.add_argument(
        "--window",
        type=int,
        default=64,
        help="max requests in flight on the connection",
    )
    loadgen.add_argument(
        "--retries",
        type=int,
        default=25,
        help="connection attempts before giving up (covers racing a "
        "server that is still binding)",
    )
    loadgen.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    loadgen.set_defaults(func=_cmd_loadgen)

    trace = sub.add_parser(
        "trace",
        help="run a scenario with full-stack tracing and write a Chrome "
        "trace-event JSON file",
    )
    add_verbosity_args(trace)
    trace.add_argument(
        "scenario",
        choices=sorted(TRACE_PRESETS),
        help="traced scenario preset (fig1 = interfered + ioshares)",
    )
    trace.add_argument(
        "-o", "--output", help="output file (default trace-<scenario>.json)"
    )
    trace.add_argument(
        "--csv", action="store_true", help="also write a flat CSV of records"
    )
    trace.add_argument(
        "--interferer",
        type=_parse_size,
        help="override the preset's interferer buffer size",
    )
    trace.add_argument("--policy", help="override the preset's pricing policy")
    trace.add_argument(
        "--kernel-events",
        action="store_true",
        help="include the per-event kernel dispatch firehose (large!)",
    )
    trace.add_argument("--sim-s", type=float, default=0.2)
    trace.add_argument("--seed", type=int, default=7)
    trace.set_defaults(func=_cmd_trace)

    chaos = sub.add_parser(
        "chaos",
        help="run a scenario under a fault-injection campaign and print "
        "a resilience report",
    )
    add_verbosity_args(chaos)
    from repro.faults.presets import campaign_presets

    chaos.add_argument(
        "scenario",
        help="chaos scenario preset (fig9 = interfered + ioshares; also "
        "fig9-static, fig9-freemarket, interfered, base)",
    )
    chaos.add_argument(
        "--campaign",
        choices=campaign_presets(),
        default="link-flap",
        help="fault campaign preset (default link-flap)",
    )
    chaos.add_argument(
        "--dry-run",
        action="store_true",
        help="print the campaign schedule without running the scenario",
    )
    chaos.add_argument(
        "--compare",
        action="store_true",
        help="run every managed scenario variant under the same campaign "
        "and print the per-policy degradation table",
    )
    chaos.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    chaos.add_argument(
        "--trace", metavar="FILE", help="also write a Chrome trace-event file"
    )
    chaos.add_argument(
        "--interferer",
        type=_parse_size,
        help="override the preset's interferer buffer size",
    )
    chaos.add_argument("--policy", help="override the preset's pricing policy")
    chaos.add_argument("--sim-s", type=float, default=1.5)
    chaos.add_argument("--seed", type=int, default=7)
    chaos.add_argument(
        "--invariants",
        choices=["off", "record", "strict"],
        default="off",
        help="runtime invariant guards: record violations, or fail fast "
        "on the first one (default off)",
    )
    chaos.set_defaults(func=_cmd_chaos)

    bench = sub.add_parser(
        "bench",
        help="run the dependency-free perf benchmarks (best-of-N process "
        "time) and optionally write BENCH_perf.json",
    )
    add_verbosity_args(bench)
    bench.add_argument("names", nargs="*", help="benchmark names (see --list)")
    bench.add_argument("--list", action="store_true", help="list benchmarks")
    bench.add_argument(
        "--rounds",
        type=int,
        default=3,
        help="runs per benchmark; the best (minimum) time is reported",
    )
    bench.add_argument(
        "-o", "--output", help="write the JSON document (e.g. BENCH_perf.json)"
    )
    bench.set_defaults(func=_cmd_bench)

    policies = sub.add_parser("policies", help="list registered pricing policies")
    add_verbosity_args(policies)
    policies.set_defaults(func=_cmd_policies)

    report = sub.add_parser(
        "report", help="run everything and write a markdown report"
    )
    add_verbosity_args(report)
    report.add_argument("-o", "--output", help="output file (default stdout)")
    report.add_argument("--seed", type=int, default=7)
    report.add_argument("--scale", choices=["fast", "full"], default=None)
    report.add_argument(
        "--no-ablations", action="store_true", help="figures only"
    )
    report.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes to fan experiments out to (default 1)",
    )
    report.set_defaults(func=_cmd_report)

    sweep = sub.add_parser(
        "sweep",
        help="replicate a scenario (or chaos campaign) across seeds "
        "through the parallel sweep engine",
        description=(
            "Fan independent (scenario, seed) cells out to a process pool "
            "and aggregate the results.  Parallel equals serial bit for "
            "bit: results merge in submission order and every cell is a "
            "self-contained seeded simulation.  With --cache-dir, cells "
            "already computed for this package version are served from "
            "the content-addressed result cache."
        ),
    )
    add_verbosity_args(sweep)
    sweep.add_argument(
        "name",
        nargs="?",
        default="sweep",
        help="scenario label; with --campaign, a chaos preset name "
        "(e.g. fig9)",
    )
    sweep.add_argument(
        "--seeds",
        type=_parse_seeds,
        default=list(range(8)),
        help="seed spec: count ('8' = seeds 0..7), range ('3:7') or "
        "explicit list ('1,5,9'); default 8",
    )
    sweep.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (default 1 = serial, same entrypoint)",
    )
    sweep.add_argument(
        "--cache-dir",
        help="content-addressed result cache directory (created on demand)",
    )
    sweep.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore --cache-dir and recompute everything",
    )
    sweep.add_argument(
        "--json",
        action="store_true",
        help="emit values, statistics and the sweep report as JSON",
    )
    sweep.add_argument(
        "--campaign",
        help="sweep a chaos scenario under this fault campaign preset "
        "instead of a plain scenario",
    )
    sweep.add_argument(
        "--interferer",
        type=_parse_size,
        help="interfering VM buffer size (e.g. 2MB); omit for base case",
    )
    sweep.add_argument(
        "--policy",
        help="pricing policy name (see 'repro policies'); omit for none",
    )
    sweep.add_argument("--sim-s", type=float, default=1.0)
    sweep.add_argument(
        "--invariants",
        choices=["off", "record", "strict"],
        default="off",
        help="runtime invariant guards in every cell: record marks "
        "violating cells tainted, strict quarantines them (default off)",
    )
    supervise = sweep.add_argument_group(
        "supervision",
        "watchdogs, retries and checkpoint/resume (repro.supervise); "
        "every state transition is appended to "
        "<run-dir>/<run-id>/manifest.jsonl, so a killed sweep resumes "
        "with --resume <run-id> to a byte-identical report",
    )
    supervise.add_argument(
        "--supervise",
        action="store_true",
        help="run cells under the supervised runtime",
    )
    supervise.add_argument(
        "--run-dir",
        default="runs",
        help="campaign directory holding per-run manifests (default runs/)",
    )
    supervise.add_argument(
        "--run-id",
        help="explicit run identifier (default: a fresh timestamped id)",
    )
    supervise.add_argument(
        "--resume",
        metavar="RUN_ID",
        help="resume an interrupted run from its manifest (implies "
        "--supervise); completed cells are served from the ledger",
    )
    supervise.add_argument(
        "--retry-quarantined",
        action="store_true",
        help="with --resume, give quarantined cells a fresh retry budget",
    )
    supervise.add_argument(
        "--timeout-s",
        type=float,
        default=0.0,
        help="per-cell wall-clock budget; 0 disables (default)",
    )
    supervise.add_argument(
        "--stall-s",
        type=float,
        default=0.0,
        help="kill a cell whose simulation makes no event progress for "
        "this long; 0 disables (default)",
    )
    supervise.add_argument(
        "--retries",
        type=int,
        default=1,
        help="retries per failed cell before quarantine (default 1)",
    )
    sweep.set_defaults(func=_cmd_sweep)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.quiet and args.verbose:
        parser.error("--quiet and --verbose are mutually exclusive")
    configure_logging(quiet=args.quiet, verbose=args.verbose)
    try:
        return args.func(args)
    except ReproError as exc:
        # Structured errors map to stable exit codes (see repro.errors):
        # config 2, sweep 3, invariant 4, cache corruption 5, service 6.
        print(f"repro: error [{exc.code}]: {exc}", file=sys.stderr)
        return exc.exit_code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
