"""Exception hierarchy for the repro package.

Every layer raises a subclass of :class:`ReproError` so callers can
catch simulation-level failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """Errors raised by the discrete-event kernel."""


class StopSimulation(Exception):
    """Internal signal used by Environment.run(until=event)."""

    def __init__(self, value: object = None) -> None:
        super().__init__(value)
        self.value = value


class ConfigError(ReproError):
    """Invalid configuration value."""


class FabricError(ReproError):
    """Errors from the InfiniBand / link models."""


class ProtectionFault(FabricError):
    """A work request referenced memory with a bad or mismatched key."""


class QPError(FabricError):
    """Queue-pair state machine violation (e.g. posting to a RESET QP)."""


class CQOverflowError(FabricError):
    """Completion queue ring overflow (CQEs produced faster than consumed)."""


class HypervisorError(ReproError):
    """Errors from the Xen-like hypervisor substrate."""


class SchedulerError(HypervisorError):
    """Credit-scheduler invariant violation or invalid cap/weight."""


class IntrospectionError(HypervisorError):
    """Foreign page mapping failure (bad domain, unmapped page, ...)."""


class ResExError(ReproError):
    """Errors from the ResEx controller / pricing policies."""


class PricingError(ResExError):
    """Invalid pricing-policy configuration or rate computation."""


class BenchmarkError(ReproError):
    """Errors from BenchEx workload components."""


class FaultError(ReproError):
    """Invalid fault specification or campaign (repro.faults)."""


class FinanceError(ReproError):
    """Errors from the financial algorithms library."""


class SweepError(ReproError):
    """One or more cells of a parallel experiment sweep failed.

    Raised by the :mod:`repro.parallel` helpers that promise complete
    results (``replicate_*``); carries the per-cell error summaries so
    a single crashed worker is attributable to its exact (scenario,
    seed) cell instead of surfacing as a broken pool.
    """

    def __init__(self, message: str, cell_errors=()):
        super().__init__(message)
        #: ``(job_label, error_text)`` pairs, submission order.
        self.cell_errors = tuple(cell_errors)
