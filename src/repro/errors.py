"""Exception hierarchy for the repro package.

Every layer raises a subclass of :class:`ReproError` so callers can
catch simulation-level failures without masking programming errors.

Each class carries a stable machine-readable :attr:`ReproError.code`
(used in manifests, telemetry records and ``--json`` error summaries)
and an :attr:`ReproError.exit_code` the CLI maps process exit statuses
from, so scripts can distinguish "a sweep cell failed" from "bad
arguments" without parsing stderr.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""

    #: Stable machine-readable identifier for this error family.
    code: str = "error"
    #: Process exit status the CLI maps this error to.
    exit_code: int = 1


class SimulationError(ReproError):
    """Errors raised by the discrete-event kernel."""

    code = "simulation"


class StopSimulation(Exception):
    """Internal signal used by Environment.run(until=event)."""

    def __init__(self, value: object = None) -> None:
        super().__init__(value)
        self.value = value


class CheckpointError(SimulationError):
    """A barrier checkpoint file is corrupt, truncated or mismatched.

    Raised by :mod:`repro.sim.checkpoint` when a ``ckpt/1`` file fails
    its magic, length or digest validation, or when a restore is
    attempted against a checkpoint recorded for a different world
    (mismatched ``world_key`` or shard geometry).  The loader treats a
    damaged *newest* file as recoverable — it falls back to the
    next-older checkpoint — so this escapes only when no usable
    checkpoint remains or when the mismatch is semantic.
    """

    code = "checkpoint"
    exit_code = 5


class ShardSyncError(SimulationError):
    """Conservative time-synchronization contract violation.

    Raised when a cross-shard message is submitted with less than the
    shard lookahead of latency, or would be delivered behind a barrier
    that has already been crossed — either one means the partitioned
    run could diverge from the serial reference, so the run aborts
    instead of silently producing non-reproducible results.
    """

    code = "shard-sync"


class ConfigError(ReproError):
    """Invalid configuration value."""

    code = "config"
    exit_code = 2


class FabricError(ReproError):
    """Errors from the InfiniBand / link models."""

    code = "fabric"


class ProtectionFault(FabricError):
    """A work request referenced memory with a bad or mismatched key."""

    code = "fabric-protection"


class QPError(FabricError):
    """Queue-pair state machine violation (e.g. posting to a RESET QP)."""

    code = "fabric-qp"


class CQOverflowError(FabricError):
    """Completion queue ring overflow (CQEs produced faster than consumed)."""

    code = "fabric-cq-overflow"


class HypervisorError(ReproError):
    """Errors from the Xen-like hypervisor substrate."""

    code = "hypervisor"


class SchedulerError(HypervisorError):
    """Credit-scheduler invariant violation or invalid cap/weight."""

    code = "scheduler"


class IntrospectionError(HypervisorError):
    """Foreign page mapping failure (bad domain, unmapped page, ...)."""

    code = "introspection"


class ResExError(ReproError):
    """Errors from the ResEx controller / pricing policies."""

    code = "resex"


class PricingError(ResExError):
    """Invalid pricing-policy configuration or rate computation."""

    code = "pricing"


class BenchmarkError(ReproError):
    """Errors from BenchEx workload components."""

    code = "benchmark"


class FaultError(ReproError):
    """Invalid fault specification or campaign (repro.faults)."""

    code = "fault"


class FinanceError(ReproError):
    """Errors from the financial algorithms library."""

    code = "finance"


class SweepError(ReproError):
    """One or more cells of a parallel experiment sweep failed.

    Raised by the :mod:`repro.parallel` helpers that promise complete
    results (``replicate_*``); carries the per-cell error summaries so
    a single crashed worker is attributable to its exact (scenario,
    seed) cell instead of surfacing as a broken pool.
    """

    code = "sweep-failed"
    exit_code = 3

    def __init__(self, message: str, cell_errors=()):
        super().__init__(message)
        #: ``(job_label, error_text)`` pairs, submission order.
        self.cell_errors = tuple(cell_errors)


class CellTimeout(SweepError):
    """A supervised sweep cell exceeded its watchdog budget.

    Covers both failure shapes the supervisor distinguishes: a
    wall-clock timeout (the cell ran too long in real time) and a
    stall (the worker's heartbeat showed no sim-event progress across
    the stall window).  :attr:`kind` says which.
    """

    code = "cell-timeout"
    exit_code = 3

    def __init__(self, message: str, kind: str = "timeout"):
        super().__init__(message)
        #: ``"timeout"`` or ``"stall"``.
        self.kind = kind


class InvariantViolation(ReproError):
    """A runtime model invariant was violated (strict mode).

    Structured: carries the registered guard name, the layer category,
    the simulation time of the violation and a details mapping — the
    same fields a ``record``-mode monitor logs without raising (see
    :mod:`repro.sim.invariants`).
    """

    code = "invariant"
    exit_code = 4

    def __init__(
        self,
        guard: str,
        message: str,
        *,
        category: str = "",
        ts_ns: int = -1,
        details=None,
    ):
        super().__init__(f"{guard}: {message}")
        self.guard = guard
        self.category = category
        self.ts_ns = ts_ns
        self.details = dict(details or {})


class CacheCorruption(ReproError):
    """A content-addressed cache entry is unreadable or mis-shaped.

    The cache layer handles this internally (corrupt entries are
    deleted and treated as misses), so it escapes only from strict
    verification paths.
    """

    code = "cache-corrupt"
    exit_code = 5


class Uncacheable(ReproError):
    """A job spec contains values with no canonical encoding.

    Historically defined in :mod:`repro.parallel.cache` (still
    re-exported there); the engine treats it as "run this cell
    uncached", never as a failure.
    """

    code = "uncacheable"


class ServiceError(ReproError):
    """Errors from the live serving layer (:mod:`repro.service`).

    The subtree's :attr:`code` values double as wire error codes: the
    gateway folds a raised :class:`ServiceError` into an ``err`` frame
    carrying ``exc.code``, and the client library re-raises the matching
    class on its side, so one stable vocabulary covers the process exit
    status (6), the JSON error summaries and the protocol itself.
    """

    code = "service"
    exit_code = 6


class ServiceUnavailable(ServiceError):
    """No server is listening (connect retry budget exhausted).

    Raised client-side by :meth:`repro.service.client.ServiceClient.connect`
    (and therefore ``repro loadgen``) once every connection attempt has
    been refused, so an absent server surfaces as a structured
    ``repro: error [service-unavailable]`` with the service exit status
    instead of a raw ``ConnectionRefusedError`` traceback.
    """

    code = "service-unavailable"


class ProtocolError(ServiceError):
    """A malformed, truncated or out-of-contract wire frame.

    Connection-fatal: once framing is broken the byte stream cannot be
    trusted, so the gateway sends one final ``err`` frame (when it still
    can) and closes the connection.
    """

    code = "service-protocol"


class HandshakeError(ServiceError):
    """The client hello was missing, malformed or version-incompatible."""

    code = "service-handshake"


class FrameTooLarge(ProtocolError):
    """A frame header announced a payload over the configured limit."""

    code = "service-frame"


class Overloaded(ServiceError):
    """The gateway's bounded request queue for this client is full.

    Backpressure is explicit: the request is rejected immediately with
    this code instead of being buffered without bound; the connection
    stays open and the client may retry.
    """

    code = "service-overloaded"


class SessionError(ServiceError):
    """A request arrived outside a valid session (no handshake, or the
    session was torn down)."""

    code = "service-session"


class AdmissionError(ServiceError):
    """VM admission failed: capacity exhausted, duplicate name, or an
    operation referenced a VM that was never admitted."""

    code = "service-admission"


class ServiceBackendError(ServiceError):
    """The backend failed while executing an accepted request.

    Wraps unexpected backend exceptions so they surface as a structured
    error frame on the wire instead of tearing down the gateway.
    """

    code = "service-backend"


#: Wire error code -> exception class, for the client library to
#: re-raise what the gateway folded into an ``err`` frame.
SERVICE_ERROR_CODES = {
    cls.code: cls
    for cls in (
        ServiceError,
        ServiceUnavailable,
        ProtocolError,
        HandshakeError,
        FrameTooLarge,
        Overloaded,
        SessionError,
        AdmissionError,
        ServiceBackendError,
    )
}


def service_error_from_code(code: str, message: str) -> ServiceError:
    """Rebuild the :class:`ServiceError` subclass a wire code names."""
    cls = SERVICE_ERROR_CODES.get(code, ServiceError)
    return cls(message)


__all__ = [
    "ReproError",
    "SimulationError",
    "ConfigError",
    "FabricError",
    "ProtectionFault",
    "QPError",
    "CQOverflowError",
    "HypervisorError",
    "SchedulerError",
    "IntrospectionError",
    "ResExError",
    "PricingError",
    "BenchmarkError",
    "FaultError",
    "FinanceError",
    "SweepError",
    "CellTimeout",
    "InvariantViolation",
    "CacheCorruption",
    "CheckpointError",
    "Uncacheable",
    "ServiceError",
    "ServiceUnavailable",
    "ProtocolError",
    "HandshakeError",
    "FrameTooLarge",
    "Overloaded",
    "SessionError",
    "AdmissionError",
    "ServiceBackendError",
    "SERVICE_ERROR_CODES",
    "service_error_from_code",
]
