"""BenchEx: the RDMA latency-sensitive trading benchmark (paper §IV)."""

from repro.benchex.app import BenchExPair, deploy_pairs, run_pairs
from repro.benchex.client import BenchExClient
from repro.benchex.config import INTERFERER_2MB, REPORTING_64KB, BenchExConfig
from repro.benchex.fanin import BenchExFanIn, FanInServer
from repro.benchex.latency import LatencyBreakdown, LatencyRecord, histogram_us
from repro.benchex.reporting import LatencyAgent
from repro.benchex.server import BenchExServer

__all__ = [
    "BenchExClient",
    "BenchExConfig",
    "BenchExFanIn",
    "BenchExPair",
    "BenchExServer",
    "FanInServer",
    "INTERFERER_2MB",
    "LatencyAgent",
    "LatencyBreakdown",
    "LatencyRecord",
    "REPORTING_64KB",
    "deploy_pairs",
    "histogram_us",
    "run_pairs",
]
