"""Latency records and aggregation for BenchEx.

Server-side latency decomposes into the paper's three parts (§II):

* **PTime** — polling time: from when the server starts polling for the
  next transaction until the request CQE is observed.  Grows under
  congestion because inbound requests serialize more slowly, and under
  CPU caps because a parked VCPU cannot observe completions.
* **CTime** — compute time for request processing.  Independent of I/O
  interference (Fig. 2 shows it flat).
* **WTime** — I/O wait: from posting the response until its send
  completion is observed.  Grows with egress congestion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.units import ns_to_us


@dataclass(frozen=True)
class LatencyRecord:
    """One served request, all times in ns."""

    request_id: int
    t_cycle_start: int
    ptime_ns: int
    ctime_ns: int
    wtime_ns: int

    @property
    def total_ns(self) -> int:
        return self.ptime_ns + self.ctime_ns + self.wtime_ns

    @property
    def total_us(self) -> float:
        return ns_to_us(self.total_ns)


@dataclass(frozen=True)
class LatencyBreakdown:
    """Mean and stddev of each component over a set of records (us)."""

    n: int
    ctime_mean: float
    ctime_std: float
    wtime_mean: float
    wtime_std: float
    ptime_mean: float
    ptime_std: float
    total_mean: float
    total_std: float

    @classmethod
    def from_records(cls, records: Sequence[LatencyRecord]) -> "LatencyBreakdown":
        if not records:
            nan = float("nan")
            return cls(0, nan, nan, nan, nan, nan, nan, nan, nan)
        c = np.array([r.ctime_ns for r in records], dtype=np.float64) / 1e3
        w = np.array([r.wtime_ns for r in records], dtype=np.float64) / 1e3
        p = np.array([r.ptime_ns for r in records], dtype=np.float64) / 1e3
        t = c + w + p
        return cls(
            n=len(records),
            ctime_mean=float(c.mean()),
            ctime_std=float(c.std()),
            wtime_mean=float(w.mean()),
            wtime_std=float(w.std()),
            ptime_mean=float(p.mean()),
            ptime_std=float(p.std()),
            total_mean=float(t.mean()),
            total_std=float(t.std()),
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "n": self.n,
            "ctime_mean_us": self.ctime_mean,
            "ctime_std_us": self.ctime_std,
            "wtime_mean_us": self.wtime_mean,
            "wtime_std_us": self.wtime_std,
            "ptime_mean_us": self.ptime_mean,
            "ptime_std_us": self.ptime_std,
            "total_mean_us": self.total_mean,
            "total_std_us": self.total_std,
        }


def histogram_us(
    latencies_us: Sequence[float], bin_width_us: float = 5.0
) -> List[tuple]:
    """(bin_left_edge, count) pairs — the Fig. 1 frequency distribution."""
    arr = np.asarray(latencies_us, dtype=np.float64)
    if arr.size == 0:
        return []
    lo = np.floor(arr.min() / bin_width_us) * bin_width_us
    hi = np.ceil(arr.max() / bin_width_us) * bin_width_us + bin_width_us
    edges = np.arange(lo, hi + bin_width_us, bin_width_us)
    counts, edges = np.histogram(arr, bins=edges)
    return [(float(e), int(c)) for e, c in zip(edges[:-1], counts) if c > 0]
