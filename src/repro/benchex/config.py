"""BenchEx configuration.

A BenchEx instance is parameterised the way the paper parameterises it
(§IV): message ("buffer") size, per-request processing amount, and
request pacing.  The paper refers to instances by buffer size — "the
64 KB VM", "the 2 MB VM" — and distinguishes the latency-sensitive
configuration (one outstanding transaction, FCFS) from the interference
generator (kept saturating via pipelining).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError
from repro.units import US, KiB


@dataclass(frozen=True)
class BenchExConfig:
    """Parameters of one client/server BenchEx pair."""

    name: str = "benchex"
    #: Message size in both directions (the paper's "buffer size").
    buffer_bytes: int = 64 * KiB
    #: Options priced per request; sets CTime (~650 ns per option).
    n_options: int = 125
    #: Per-request uniform jitter on the batch size (fraction of
    #: n_options).  Real request processing varies; this also prevents
    #: the artificial phase-lock of two identical deterministic loops.
    ctime_jitter: float = 0.05
    #: Client window: outstanding requests.  1 = latency-sensitive FCFS
    #: trading loop; >1 = interference-generator style pipelining.
    pipeline_depth: int = 1
    #: Client pause between receiving a response and the next request.
    think_time_ns: int = 0
    #: Stop after this many completed requests (None = run forever).
    request_limit: Optional[int] = None
    #: Requests excluded from recorded statistics at the start.
    warmup_requests: int = 0
    #: Per-request cost of the in-VM latency reporting agent, when an
    #: agent is attached (the paper measures ~10 us).
    reporting_cost_ns: int = 10 * US
    #: If True, the server really executes the Black-Scholes batch (the
    #: numbers are computed); if False only the CPU cost is simulated.
    execute_finance_kernel: bool = True
    #: Completion detection: "poll" busy-polls the CQ (the paper's
    #: latency-critical style); "event" sleeps on the completion channel
    #: and pays interrupt cost instead of CPU.
    completion_mode: str = "poll"

    def __post_init__(self) -> None:
        if self.buffer_bytes < 1 * KiB:
            raise ConfigError("buffer must be at least one MTU (1 KiB)")
        if self.n_options < 1:
            raise ConfigError("n_options must be >= 1")
        if not 0.0 <= self.ctime_jitter < 1.0:
            raise ConfigError("ctime_jitter must be in [0, 1)")
        if self.pipeline_depth < 1:
            raise ConfigError("pipeline_depth must be >= 1")
        if self.think_time_ns < 0:
            raise ConfigError("think_time_ns must be >= 0")
        if self.request_limit is not None and self.request_limit < 1:
            raise ConfigError("request_limit must be >= 1 or None")
        if self.warmup_requests < 0:
            raise ConfigError("warmup_requests must be >= 0")
        if self.completion_mode not in ("poll", "event"):
            raise ConfigError(
                f"completion_mode must be 'poll' or 'event', "
                f"got {self.completion_mode!r}"
            )

    def label(self) -> str:
        """Paper-style label, e.g. '64KB' or '2MB'."""
        from repro.units import format_bytes

        return format_bytes(self.buffer_bytes)


#: The paper's latency-sensitive reporting application.
REPORTING_64KB = BenchExConfig(name="reporting-64KB", buffer_bytes=64 * KiB)

#: The paper's canonical interference generator.
INTERFERER_2MB = BenchExConfig(
    name="interferer-2MB",
    buffer_bytes=2048 * KiB,
    pipeline_depth=2,
)
