"""Fan-in BenchEx: one trading server VM serving many client VMs.

The paper describes BenchEx as "multiple clients post transactions and
request feeds from a trading server hosted by the Exchange" with a
strict FCFS queue (§IV).  This module is that N:1 configuration: the
server VM owns one shared receive queue feeding QPs from every client,
processes the pooled recv CQ in arrival order, and responds on the
originating client's QP (identified by the CQE's qp_num).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.benchex.client import BenchExClient
from repro.benchex.config import BenchExConfig
from repro.benchex.latency import LatencyRecord
from repro.benchex.reporting import LatencyAgent
from repro.errors import BenchmarkError
from repro.finance.workload import compute_cost_ns, process_request
from repro.ib.cq import WCStatus
from repro.ib.mr import Access
from repro.ib.verbs import connect
from repro.units import ns_to_us


class FanInServer:
    """FCFS trading server multiplexing many client QPs over one SRQ."""

    RECV_HEADROOM = 4

    def __init__(self, config: BenchExConfig, ctx, rng, agent: Optional[LatencyAgent] = None) -> None:
        self.config = config
        self.ctx = ctx
        self.rng = rng
        self.agent = agent
        self.qps: List = []
        self.srq = None
        self.recv_cq = None
        self.send_cq = None
        self.records: List[LatencyRecord] = []
        #: Requests served per client qp_num.
        self.served_by_qp: Dict[int, int] = {}
        self.requests_served = 0
        self._send_mr = None
        self._recv_mr = None

    def setup(self, frontend, n_clients: int):
        """Create the SRQ, CQs and per-client QPs (process generator)."""
        cfg = self.config
        self.recv_cq = yield from frontend.create_cq(self.ctx)
        self.send_cq = yield from frontend.create_cq(self.ctx)
        self.srq = yield from frontend.create_srq(self.ctx)
        for _ in range(n_clients):
            qp = yield from frontend.create_qp(
                self.ctx, self.send_cq, self.recv_cq, srq=self.srq
            )
            self.qps.append(qp)
        self._send_mr = yield from frontend.reg_mr(
            self.ctx, cfg.buffer_bytes, Access.full(), label="fanin-resp"
        )
        self._recv_mr = yield from frontend.reg_mr(
            self.ctx, cfg.buffer_bytes, Access.full(), label="fanin-req"
        )
        pool = n_clients * (cfg.pipeline_depth + self.RECV_HEADROOM)
        for _ in range(pool):
            yield from self.ctx.post_srq_recv(self.srq, self._recv_mr)

    def _await_cq(self, cq):
        if self.config.completion_mode == "event":
            return (yield from self.ctx.wait_cq(cq))
        return (yield from self.ctx.poll_cq_blocking(cq))

    def run(self):
        """Serve requests FCFS across all clients (process generator)."""
        if self.srq is None:
            raise BenchmarkError("setup() must run before run()")
        cfg = self.config
        env = self.ctx.domain.env
        vcpu = self.ctx.domain.vcpu
        qp_by_num = {qp.qp_num: qp for qp in self.qps}
        backlog = []
        served = 0

        while cfg.request_limit is None or served < cfg.request_limit:
            cycle_start = env.now
            if backlog:
                cqe = backlog.pop(0)
            else:
                cqes, _ = yield from self._await_cq(self.recv_cq)
                cqe = cqes[0]
                backlog.extend(cqes[1:])
            t_request = env.now
            if cqe.status is not WCStatus.SUCCESS:
                raise BenchmarkError(f"fan-in request failed: {cqe.status}")
            qp = qp_by_num[cqe.qp_num]

            request = cqe.payload
            if cfg.execute_finance_kernel and request is not None:
                result, cost_ns = process_request(request, self.rng)
            else:
                result, cost_ns = None, compute_cost_ns(cfg.n_options)
            yield vcpu.compute(cost_ns)
            t_computed = env.now

            yield from self.ctx.post_srq_recv(self.srq, self._recv_mr)
            yield from self.ctx.post_send(
                qp,
                self._send_mr,
                length=cfg.buffer_bytes,
                payload=result,
                imm_data=cqe.imm_data,
            )
            yield from self._await_cq(self.send_cq)
            t_responded = env.now

            served += 1
            self.requests_served = served
            self.served_by_qp[cqe.qp_num] = self.served_by_qp.get(cqe.qp_num, 0) + 1
            if served <= cfg.warmup_requests:
                continue
            record = LatencyRecord(
                request_id=served,
                t_cycle_start=cycle_start,
                ptime_ns=t_request - cycle_start,
                ctime_ns=t_computed - t_request,
                wtime_ns=t_responded - t_computed,
            )
            self.records.append(record)
            if self.agent is not None:
                yield vcpu.compute(cfg.reporting_cost_ns)
                self.agent.report(ns_to_us(record.total_ns))

    def latencies_us(self) -> np.ndarray:
        return np.array([r.total_us for r in self.records], dtype=np.float64)


class BenchExFanIn:
    """A deployed fan-in instance: one server VM, ``n_clients`` client VMs."""

    def __init__(
        self,
        bed,
        server_node,
        client_node,
        config: BenchExConfig,
        n_clients: int,
        with_agent: bool = False,
    ) -> None:
        if n_clients < 1:
            raise BenchmarkError("n_clients must be >= 1")
        self.bed = bed
        self.config = config
        self.n_clients = n_clients
        self.server_dom = server_node.create_guest(f"{config.name}-server")
        self.server_fe = server_node.frontend(self.server_dom)
        self.client_doms = [
            client_node.create_guest(f"{config.name}-client{i}")
            for i in range(n_clients)
        ]
        self.client_fes = [
            client_node.frontend(dom) for dom in self.client_doms
        ]
        self.agent = LatencyAgent(self.server_dom.domid) if with_agent else None
        self.server: Optional[FanInServer] = None
        self.clients: List[BenchExClient] = []
        self.server_proc = None
        self.client_procs: List = []

    def deploy(self):
        """Process generator: set up the server, clients, connections."""
        cfg = self.config
        server_ctx = yield from self.server_fe.open_context()
        self.server = FanInServer(
            cfg,
            server_ctx,
            self.bed.rng.stream(f"{cfg.name}/server"),
            agent=self.agent,
        )
        yield from self.server.setup(self.server_fe, self.n_clients)

        for i, fe in enumerate(self.client_fes):
            ctx = yield from fe.open_context()
            send_cq = yield from fe.create_cq(ctx)
            recv_cq = yield from fe.create_cq(ctx)
            qp = yield from fe.create_qp(ctx, send_cq, recv_cq)
            yield from connect(server_ctx, self.server.qps[i], ctx, qp)
            client = BenchExClient(
                cfg, ctx, qp, self.bed.rng.stream(f"{cfg.name}/client{i}")
            )
            yield from client.setup(fe)
            self.clients.append(client)

    def start(self) -> None:
        if self.server is None or len(self.clients) != self.n_clients:
            raise BenchmarkError("deploy() must complete before start()")
        env = self.bed.env
        self.server_proc = env.process(
            self.server.run(), name=f"{self.config.name}-server"
        )
        self.client_procs = [
            env.process(c.run(), name=f"{self.config.name}-client{i}")
            for i, c in enumerate(self.clients)
        ]

    def client_latencies_us(self) -> np.ndarray:
        if not self.clients:
            return np.array([])
        return np.concatenate([c.latency_array() for c in self.clients])
