"""The BenchEx trading server.

One server instance runs inside one VM and serves one client over a
connected RC QP, first-come-first-served (exchange semantics: each
transaction may change the outcome of the next, paper §IV).

Per-request cycle and its measured decomposition::

    poll recv CQ  ──────────────► PTime  (request observation)
    process (Black-Scholes batch)► CTime
    post response SEND
    poll send CQ  ──────────────► WTime  (response on the wire + ack)

The server keeps several receive WRs pre-posted and replenishes after
consuming each, like any verbs application.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.benchex.config import BenchExConfig
from repro.benchex.latency import LatencyRecord
from repro.benchex.reporting import LatencyAgent
from repro.errors import BenchmarkError
from repro.finance.workload import PricingRequest, compute_cost_ns, process_request
from repro.ib.cq import WCStatus
from repro.ib.mr import Access
from repro.ib.qp import QueuePair
from repro.ib.verbs import IBContext
from repro.units import ns_to_us


class BenchExServer:
    """Server half of a BenchEx pair."""

    #: Receive WRs kept pre-posted beyond the client's window.
    RECV_HEADROOM = 2

    def __init__(
        self,
        config: BenchExConfig,
        ctx: IBContext,
        qp: QueuePair,
        rng: np.random.Generator,
        agent: Optional[LatencyAgent] = None,
    ) -> None:
        self.config = config
        self.ctx = ctx
        self.qp = qp
        self.rng = rng
        self.agent = agent
        #: Completed-request records (post-warmup).
        self.records: List[LatencyRecord] = []
        self.requests_served = 0
        self.responses_failed = 0
        self._send_mr = None
        self._recv_mr = None

    # -- setup -----------------------------------------------------------------
    def setup(self, frontend):
        """Register buffers and pre-post receives (process generator)."""
        cfg = self.config
        self._send_mr = yield from frontend.reg_mr(
            self.ctx, cfg.buffer_bytes, Access.full(), label=f"{cfg.name}-resp"
        )
        self._recv_mr = yield from frontend.reg_mr(
            self.ctx, cfg.buffer_bytes, Access.full(), label=f"{cfg.name}-req"
        )
        for _ in range(cfg.pipeline_depth + self.RECV_HEADROOM):
            yield from self.ctx.post_recv(self.qp, self._recv_mr)

    def _await_cq(self, cq):
        """Completion wait in the configured mode (poll vs event)."""
        if self.config.completion_mode == "event":
            return (yield from self.ctx.wait_cq(cq))
        return (yield from self.ctx.poll_cq_blocking(cq))

    # -- main loop ---------------------------------------------------------------
    def run(self):
        """Serve requests until the configured limit (process generator)."""
        if self._send_mr is None:
            raise BenchmarkError("setup() must run before run()")
        cfg = self.config
        env = self.ctx.domain.env
        vcpu = self.ctx.domain.vcpu
        served = 0
        backlog = []  # CQEs polled but not yet served (batched poll)

        while cfg.request_limit is None or served < cfg.request_limit:
            cycle_start = env.now

            # --- PTime: wait for the next transaction -------------------
            if backlog:
                cqe = backlog.pop(0)
            else:
                cqes, _polled = yield from self._await_cq(self.qp.recv_cq)
                cqe = cqes[0]
                backlog.extend(cqes[1:])
            t_request = env.now
            if cqe.status is not WCStatus.SUCCESS:
                raise BenchmarkError(
                    f"server {cfg.name}: request completion failed: {cqe.status}"
                )

            # --- CTime: price the batch ----------------------------------
            request: PricingRequest = cqe.payload
            if cfg.execute_finance_kernel and request is not None:
                result, cost_ns = process_request(request, self.rng)
            else:
                cost_ns = compute_cost_ns(cfg.n_options)
                result = None
            yield vcpu.compute(cost_ns)
            t_computed = env.now

            # Replenish the consumed receive before responding.
            yield from self.ctx.post_recv(self.qp, self._recv_mr)

            # --- WTime: response on the wire ------------------------------
            yield from self.ctx.post_send(
                self.qp,
                self._send_mr,
                length=cfg.buffer_bytes,
                payload=result,
                imm_data=cqe.imm_data,
            )
            send_cqes, _polled = yield from self._await_cq(self.qp.send_cq)
            t_responded = env.now
            if any(c.status is not WCStatus.SUCCESS for c in send_cqes):
                self.responses_failed += 1

            served += 1
            self.requests_served = served
            if served <= cfg.warmup_requests:
                continue

            record = LatencyRecord(
                request_id=served,
                t_cycle_start=cycle_start,
                ptime_ns=t_request - cycle_start,
                ctime_ns=t_computed - t_request,
                wtime_ns=t_responded - t_computed,
            )
            self.records.append(record)

            tel = env.telemetry
            if tel.enabled:
                lane = cfg.name
                tel.span(
                    "benchex", "request", cycle_start, t_responded,
                    lane=lane, request_id=served, total_us=record.total_us,
                )
                tel.span("benchex", "PTime", cycle_start, t_request, lane=lane)
                tel.span("benchex", "CTime", t_request, t_computed, lane=lane)
                tel.span("benchex", "WTime", t_computed, t_responded, lane=lane)

            # --- report to the in-VM agent (costs ~10 us of guest CPU) ----
            if self.agent is not None:
                yield vcpu.compute(cfg.reporting_cost_ns)
                self.agent.report(ns_to_us(record.total_ns))

    def latencies_us(self) -> np.ndarray:
        """Total server-side latency per request (us)."""
        return np.array([r.total_us for r in self.records], dtype=np.float64)
