"""Wiring a BenchEx client/server pair onto the testbed.

One :class:`BenchExPair` is the deployable unit of the paper's
experiments: a server VM on the server host, a client VM on the client
host, connected RC QPs, and the two application loops.  The pair's VMs
get one pinned core each (the paper's configuration), so all observed
interference is I/O interference.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.benchex.client import BenchExClient
from repro.benchex.config import BenchExConfig
from repro.benchex.latency import LatencyBreakdown
from repro.benchex.reporting import LatencyAgent
from repro.benchex.server import BenchExServer
from repro.errors import BenchmarkError
from repro.ib.verbs import connect
from repro.sim.process import Process

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.platform import Node, Testbed


class BenchExPair:
    """A deployed client/server BenchEx instance."""

    def __init__(
        self,
        bed: "Testbed",
        server_node: "Node",
        client_node: "Node",
        config: BenchExConfig,
        with_agent: bool = False,
    ) -> None:
        self.bed = bed
        self.config = config
        self.server_node = server_node
        self.client_node = client_node

        self.server_dom = server_node.create_guest(f"{config.name}-server")
        self.client_dom = client_node.create_guest(f"{config.name}-client")
        self.server_fe = server_node.frontend(self.server_dom)
        self.client_fe = client_node.frontend(self.client_dom)

        self.agent: Optional[LatencyAgent] = (
            LatencyAgent(self.server_dom.domid) if with_agent else None
        )
        self.server: Optional[BenchExServer] = None
        self.client: Optional[BenchExClient] = None
        self.server_proc: Optional[Process] = None
        self.client_proc: Optional[Process] = None

    # -- lifecycle -------------------------------------------------------------
    def deploy(self):
        """Create contexts, CQs, QPs, MRs; connect (process generator)."""
        env = self.bed.env
        cfg = self.config

        server_ctx = yield from self.server_fe.open_context()
        client_ctx = yield from self.client_fe.open_context()

        s_send_cq = yield from self.server_fe.create_cq(server_ctx)
        s_recv_cq = yield from self.server_fe.create_cq(server_ctx)
        c_send_cq = yield from self.client_fe.create_cq(client_ctx)
        c_recv_cq = yield from self.client_fe.create_cq(client_ctx)

        server_qp = yield from self.server_fe.create_qp(
            server_ctx, s_send_cq, s_recv_cq
        )
        client_qp = yield from self.client_fe.create_qp(
            client_ctx, c_send_cq, c_recv_cq
        )
        yield from connect(server_ctx, server_qp, client_ctx, client_qp)

        rng_server = self.bed.rng.stream(f"{cfg.name}/server")
        rng_client = self.bed.rng.stream(f"{cfg.name}/client")
        self.server = BenchExServer(
            cfg, server_ctx, server_qp, rng_server, agent=self.agent
        )
        self.client = BenchExClient(cfg, client_ctx, client_qp, rng_client)
        yield from self.server.setup(self.server_fe)
        yield from self.client.setup(self.client_fe)

    def start(self) -> None:
        """Launch the server and client loops as background processes."""
        if self.server is None or self.client is None:
            raise BenchmarkError("deploy() must complete before start()")
        env = self.bed.env
        self.server_proc = env.process(
            self.server.run(), name=f"{self.config.name}-server"
        )
        self.client_proc = env.process(
            self.client.run(), name=f"{self.config.name}-client"
        )

    # -- results ------------------------------------------------------------------
    def server_breakdown(self) -> LatencyBreakdown:
        if self.server is None:
            raise BenchmarkError("pair not deployed")
        return LatencyBreakdown.from_records(self.server.records)


def deploy_pairs(bed: "Testbed", pairs: List[BenchExPair]):
    """Process generator: deploy every pair, then start all loops.

    Deployment is sequential (control path), but the application loops
    all start at the same instant so collocated workloads overlap from
    the first request.
    """
    for pair in pairs:
        yield from pair.deploy()
    for pair in pairs:
        pair.start()


def run_pairs(
    bed: "Testbed",
    pairs: List[BenchExPair],
    until_ns: Optional[int] = None,
) -> None:
    """Deploy and run pairs; blocks until clients with request limits
    finish (or ``until_ns`` of simulated time elapses)."""
    bed.env.process(deploy_pairs(bed, pairs), name="deploy")
    if until_ns is not None:
        bed.env.run(until=until_ns)
        return
    limited = [p for p in pairs if p.config.request_limit is not None]
    if not limited:
        raise BenchmarkError(
            "run_pairs without until_ns requires at least one pair with "
            "a request_limit"
        )
    # Run until every limited client finishes.
    def waiter(env):
        # Wait for deployment to create the processes.
        while any(p.client_proc is None for p in limited):
            yield env.timeout(1_000_000)
        yield env.all_of([p.client_proc for p in limited])

    done = bed.env.process(waiter(bed.env), name="run-waiter")
    bed.env.run(until=done)
