"""The BenchEx trading client.

Posts timestamped transaction requests and measures round-trip latency
from its own clock (paper §IV: clients timestamp the request, the
reply, and difference the two).  ``pipeline_depth`` requests are kept
outstanding: depth 1 is the latency-sensitive closed loop; larger
depths keep the wire saturated (interference-generator mode).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

import numpy as np

from repro.benchex.config import BenchExConfig
from repro.errors import BenchmarkError
from repro.finance.workload import PricingRequest
from repro.ib.cq import WCStatus
from repro.ib.mr import Access
from repro.ib.qp import QueuePair
from repro.ib.verbs import IBContext
from repro.units import ns_to_us


class BenchExClient:
    """Client half of a BenchEx pair."""

    RECV_HEADROOM = 2

    def __init__(
        self,
        config: BenchExConfig,
        ctx: IBContext,
        qp: QueuePair,
        rng: np.random.Generator,
    ) -> None:
        self.config = config
        self.ctx = ctx
        self.qp = qp
        self.rng = rng
        #: Round-trip latency per completed request, in us (post-warmup).
        self.latencies_us: List[float] = []
        #: (completion_time_ns, latency_us) pairs for time-series plots.
        self.samples: List[tuple] = []
        self.requests_completed = 0
        #: Optional pacing hook: called with the current time (ns),
        #: returns the think time (ns) before the next request.  Used by
        #: trace-driven workloads; overrides config.think_time_ns.
        self.pacer: Optional[Callable[[int], int]] = None
        self._send_mr = None
        self._recv_mr = None

    def setup(self, frontend):
        """Register buffers and pre-post receives (process generator)."""
        cfg = self.config
        self._send_mr = yield from frontend.reg_mr(
            self.ctx, cfg.buffer_bytes, Access.full(), label=f"{cfg.name}-req"
        )
        self._recv_mr = yield from frontend.reg_mr(
            self.ctx, cfg.buffer_bytes, Access.full(), label=f"{cfg.name}-resp"
        )
        for _ in range(cfg.pipeline_depth + self.RECV_HEADROOM):
            yield from self.ctx.post_recv(self.qp, self._recv_mr)

    def _make_request(self, request_id: int) -> PricingRequest:
        cfg = self.config
        spot = 80.0 + 40.0 * self.rng.random()
        n_options = max(
            1,
            round(
                cfg.n_options
                * (1.0 + cfg.ctime_jitter * (2.0 * self.rng.random() - 1.0))
            ),
        )
        return PricingRequest(
            request_id=request_id,
            n_options=n_options,
            spot=spot,
            strike=spot * (0.9 + 0.2 * self.rng.random()),
            rate=0.05,
            sigma=0.15 + 0.3 * self.rng.random(),
            expiry_years=0.25 + self.rng.random(),
        )

    def run(self):
        """Issue requests until the configured limit (process generator)."""
        if self._send_mr is None:
            raise BenchmarkError("setup() must run before run()")
        cfg = self.config
        env = self.ctx.domain.env
        vcpu = self.ctx.domain.vcpu
        sent = 0
        completed = 0
        in_flight: Deque[int] = deque()  # send timestamps, FIFO (RC ordering)

        while cfg.request_limit is None or completed < cfg.request_limit:
            # Fill the window.
            while len(in_flight) < cfg.pipeline_depth and (
                cfg.request_limit is None or sent < cfg.request_limit
            ):
                sent += 1
                request = self._make_request(sent)
                in_flight.append(env.now)
                yield from self.ctx.post_send(
                    self.qp,
                    self._send_mr,
                    length=cfg.buffer_bytes,
                    payload=request,
                    imm_data=sent,
                    signaled=False,
                )

            # Wait for (at least one) response.
            if cfg.completion_mode == "event":
                cqes, _polled = yield from self.ctx.wait_cq(self.qp.recv_cq)
            else:
                cqes, _polled = yield from self.ctx.poll_cq_blocking(
                    self.qp.recv_cq
                )
            for cqe in cqes:
                if cqe.status is not WCStatus.SUCCESS:
                    raise BenchmarkError(
                        f"client {cfg.name}: response failed: {cqe.status}"
                    )
                if not in_flight:
                    raise BenchmarkError(
                        f"client {cfg.name}: response without a request"
                    )
                t_sent = in_flight.popleft()
                completed += 1
                self.requests_completed = completed
                latency_us = ns_to_us(env.now - t_sent)
                if completed > cfg.warmup_requests:
                    self.latencies_us.append(latency_us)
                    self.samples.append((env.now, latency_us))
                # Replenish the consumed receive.
                yield from self.ctx.post_recv(self.qp, self._recv_mr)

            think = self.pacer(env.now) if self.pacer else cfg.think_time_ns
            if think > 0:
                yield env.timeout(think)

    def latency_array(self) -> np.ndarray:
        return np.asarray(self.latencies_us, dtype=np.float64)
