"""In-VM monitoring agent: the latency feedback channel to ResEx.

BenchEx exposes observed latencies to an agent running inside each VM;
the agent forwards them to the ResEx module in dom0 (paper §IV).  The
channel is modelled as a shared-memory ring the controller drains once
per interval; the VM pays ~10 us of CPU per report (paper §VII-B).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np


class LatencyAgent:
    """Per-VM agent accumulating recent latency observations (us)."""

    def __init__(self, domid: int, capacity: int = 65536) -> None:
        self.domid = domid
        self.capacity = capacity
        self._buffer: List[float] = []
        #: Total observations ever reported (monotonic).
        self.total_reported = 0
        #: Drops due to a full ring (controller draining too slowly).
        self.dropped = 0

    def report(self, latency_us: float) -> None:
        """Called from inside the VM after each completed request."""
        if len(self._buffer) >= self.capacity:
            self.dropped += 1
            return
        self._buffer.append(float(latency_us))
        self.total_reported += 1

    def drain(self) -> np.ndarray:
        """Controller side: take everything reported since last drain."""
        out = np.asarray(self._buffer, dtype=np.float64)
        self._buffer = []
        return out

    def peek_stats(self) -> Tuple[int, float]:
        """(pending count, pending mean) without draining."""
        if not self._buffer:
            return 0, float("nan")
        arr = np.asarray(self._buffer)
        return len(self._buffer), float(arr.mean())

    def __repr__(self) -> str:
        return (
            f"<LatencyAgent dom{self.domid} pending={len(self._buffer)} "
            f"total={self.total_reported}>"
        )
