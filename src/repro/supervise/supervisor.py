"""The supervised sweep runtime: watchdogs, retries, resume.

:func:`repro.parallel.run_sweep` assumes every cell terminates and the
process running the sweep survives it.  Long campaigns on shared
machines violate both assumptions routinely: a cell wedges on a model
bug, an OOM killer takes a worker, the job scheduler kills the whole
process tree at the wall-time limit.  This module wraps the same cell
entrypoint (:func:`repro.parallel.engine._execute_job` — serial equals
parallel equals supervised, structurally) with:

* **per-cell watchdogs** — a wall-clock budget and a *stall* detector:
  each worker installs a :class:`HeartbeatBus` (a telemetry bus whose
  only live method is ``kernel_tick``), which writes the simulator's
  event counter to a per-cell heartbeat file; a cell whose counter
  stops advancing for ``stall_s`` is wedged, not slow, and is killed.
  Each supervised cell runs in its **own** forked process — unlike a
  shared pool, one wedged cell can be killed without collateral;
* **deterministic retries** — a failed/killed attempt is retried up to
  ``retries`` more times with seeded exponential backoff (the delay is
  a pure function of ``(backoff_seed, cell, attempt)``); a cell that
  exhausts its budget is **quarantined**, a terminal state that the
  sweep reports honestly instead of crashing on;
* **checkpoint/resume** — every state transition is appended to the
  run's :class:`~repro.supervise.manifest.RunManifest`; ``done``
  records carry the metrics themselves, so a killed sweep resumes by
  replaying the ledger, serving completed cells from it, and running
  only the remainder — producing a byte-identical deterministic report
  (see :meth:`SupervisedResult.deterministic_dict`).

Cells run under the ambient invariant-guard mode (see
:mod:`repro.sim.invariants`): in ``record`` mode a violating cell
completes but is marked *tainted* in the manifest and excluded from
the result cache; in ``strict`` mode the violation is a per-cell error
that retries/quarantines like any other.
"""

from __future__ import annotations

import os
import pathlib
import random
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ConfigError
from repro.parallel.engine import (
    CellResult,
    SweepJob,
    SweepReport,
    SweepResult,
    _as_cache,
    _execute_job,
    _mp_context,
)
from repro.sim import invariants as _invariants
from repro.supervise.manifest import (
    DONE,
    QUARANTINED,
    RETRYING,
    RUNNING,
    ManifestState,
    RunManifest,
)
from repro.telemetry.bus import SWEEP

#: Environment variable exposing the attempt number (1-based) to the
#: cell runner.  Production cells must ignore it (results must not
#: depend on which attempt produced them); test job kinds read it to
#: inject attempt-correlated failures.
ATTEMPT_ENV = "REPRO_SWEEP_ATTEMPT"


@dataclass(frozen=True)
class SupervisePolicy:
    """Knobs of the supervision layer.

    ``timeout_s``/``stall_s`` of 0 disable that watchdog; with both
    disabled and one worker, cells run in-process (no fork per cell).
    ``retries`` is the number of *re*-tries: a cell gets
    ``retries + 1`` attempts before quarantine.
    """

    timeout_s: float = 0.0
    stall_s: float = 0.0
    retries: int = 1
    #: First-retry backoff; doubles per attempt, jittered in
    #: [0.5x, 1.5x] by a PRNG seeded from (backoff_seed, cell, attempt).
    backoff_base_s: float = 0.1
    backoff_seed: int = 0
    #: Sim events between heartbeat-file writes in the worker.
    heartbeat_every: int = 4096
    #: Supervisor poll interval while cells are in flight.
    poll_s: float = 0.02

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ConfigError(f"retries must be >= 0, got {self.retries}")
        if self.timeout_s < 0 or self.stall_s < 0:
            raise ConfigError("timeout_s and stall_s must be >= 0")
        if self.heartbeat_every < 1:
            raise ConfigError("heartbeat_every must be >= 1")

    @property
    def max_attempts(self) -> int:
        return self.retries + 1

    @property
    def watchdog(self) -> bool:
        """Whether any feature requiring per-cell processes is on."""
        return self.timeout_s > 0 or self.stall_s > 0

    def backoff_s(self, job: SweepJob, attempt: int) -> float:
        """Deterministic jittered exponential backoff before retrying
        ``job`` after its ``attempt``-th failure."""
        rng = random.Random(
            f"{self.backoff_seed}:{job.kind}:{job.name}:{job.seed}:{attempt}"
        )
        return self.backoff_base_s * (2.0 ** (attempt - 1)) * (0.5 + rng.random())


class HeartbeatBus:
    """A telemetry-bus-shaped progress reporter for supervised workers.

    Installed process-globally in the child, so the cell's
    ``Environment`` picks it up like any other bus.  Every emit is a
    no-op except :meth:`kernel_tick`, which writes the kernel's event
    counter to the heartbeat file every ``every`` events — the
    supervisor reads the file and treats a counter that stops
    advancing as a wedged simulation.
    """

    __slots__ = ("path", "every")

    enabled = True
    kernel_dispatch = False
    kernel_sample_every = 0

    def __init__(self, path, every: int) -> None:
        self.path = str(path)
        self.every = int(every)

    def kernel_tick(
        self, ts_ns: int, events_processed: int, queue_depth: int, event: object
    ) -> None:
        if events_processed % self.every == 0:
            try:
                with open(self.path, "w", encoding="utf-8") as fh:
                    fh.write(f"{events_processed}\n")
            except OSError:  # heartbeat loss must never kill the cell
                pass

    def kernel_resume(self, *args: Any, **kwargs: Any) -> None:
        pass

    def span(self, *args: Any, **kwargs: Any) -> None:
        pass

    def instant(self, *args: Any, **kwargs: Any) -> None:
        pass

    event = instant

    def counter(self, *args: Any, **kwargs: Any) -> None:
        pass

    def __repr__(self) -> str:
        return f"<HeartbeatBus {self.path!r} every={self.every}>"


def _read_heartbeat(path: str) -> Optional[int]:
    """The worker's last-reported event count, or None."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return int(fh.read().split()[0])
    except (OSError, ValueError, IndexError):
        return None


def _supervised_child(conn, job: SweepJob, attempt: int, invariant_mode: str,
                      hb_path: Optional[str], hb_every: int) -> None:
    """Entrypoint of one per-cell worker process (fork)."""
    os.environ[ATTEMPT_ENV] = str(attempt)
    if hb_path is not None:
        from repro import telemetry as _telemetry

        _telemetry.install(HeartbeatBus(hb_path, hb_every))
    _invariants.install(_invariants.monitor_for_mode(invariant_mode))
    envelope = _execute_job(job)
    try:
        conn.send(envelope)
    except Exception as exc:  # unpicklable payload: degrade to an error
        conn.send(
            {
                "error": f"cell result is not picklable: {exc!r}",
                "pid": os.getpid(),
            }
        )
    conn.close()


def _attempt_inprocess(job: SweepJob, attempt: int, invariant_mode: str) -> Dict[str, Any]:
    """Run one attempt in this process (no-watchdog serial path)."""
    os.environ[ATTEMPT_ENV] = str(attempt)
    previous = _invariants.current()
    _invariants.install(_invariants.monitor_for_mode(invariant_mode))
    try:
        return _execute_job(job)
    finally:
        _invariants.install(previous)
        os.environ.pop(ATTEMPT_ENV, None)


@dataclass
class _Pending:
    """One not-yet-concluded cell in the supervisor's work queue."""

    idx: int
    job: SweepJob
    key: Optional[str]
    attempt: int = 1
    ready_at: float = 0.0  # monotonic time before which it may not start


@dataclass
class _Active:
    """One in-flight per-cell worker process."""

    pending: _Pending
    proc: Any
    conn: Any
    hb_path: Optional[str]
    started: float
    last_events: Optional[int] = None
    last_progress: float = 0.0


@dataclass
class SupervisedResult:
    """A supervised sweep's outcome: cells + report + ledger identity."""

    result: SweepResult
    run_id: str
    manifest_path: pathlib.Path
    #: Cells served from a resumed manifest (already-done last run).
    resumed: int = 0
    #: Cells terminally quarantined (error after exhausting retries).
    quarantined: int = 0
    #: Total failed attempts that were retried.
    retried_attempts: int = 0

    @property
    def cells(self) -> List[CellResult]:
        return self.result.cells

    @property
    def report(self) -> SweepReport:
        return self.result.report

    @property
    def complete(self) -> bool:
        return self.quarantined == 0 and self.report.errors == 0

    def integrity(self) -> Dict[str, Any]:
        """The honest summary attached to every supervised report."""
        violations: Dict[str, int] = {}
        for cell in self.cells:
            for v in cell.violations:
                guard = v.get("guard", "?")
                violations[guard] = violations.get(guard, 0) + 1
        return {
            "complete": self.complete,
            "cells": len(self.cells),
            "done": sum(1 for c in self.cells if c.ok),
            "quarantined": self.quarantined,
            "tainted": sum(1 for c in self.cells if c.tainted),
            "retried_attempts": self.retried_attempts,
            "invariant_violations": violations,
        }

    def deterministic_dict(self) -> Dict[str, Any]:
        """The run's outcome with all timing/identity noise removed.

        A resumed run and an uninterrupted run of the same cells must
        produce **byte-identical** JSON for this value — that is the
        correctness contract the kill-and-resume test enforces.
        """
        from repro.supervise.manifest import result_digest

        cells = []
        for cell in self.cells:
            cells.append(
                {
                    "label": cell.job.label,
                    "state": DONE if cell.ok else QUARANTINED,
                    "digest": (
                        result_digest(cell.metrics)
                        if cell.metrics is not None
                        else None
                    ),
                    "metrics": cell.metrics,
                    "tainted": cell.tainted,
                    "error_code": cell.error_code,
                }
            )
        return {"cells": cells, "integrity": self.integrity()}


def new_run_id() -> str:
    """A fresh, filesystem-safe run identifier."""
    return time.strftime("%Y%m%d-%H%M%S") + "-" + os.urandom(3).hex()


def _timeout_envelope(kind: str, budget_s: float, pid: int) -> Dict[str, Any]:
    what = (
        f"no sim-event progress for {budget_s:g}s (stalled; killed)"
        if kind == "stall"
        else f"exceeded {budget_s:g}s wall-clock budget (killed)"
    )
    return {
        "error": f"CellTimeout: {what}",
        "error_code": "cell-timeout",
        "timeout_kind": kind,
        "pid": pid,
    }


def supervised_sweep(
    jobs: Optional[Sequence[SweepJob]],
    *,
    run_dir,
    run_id: Optional[str] = None,
    policy: Optional[SupervisePolicy] = None,
    workers: int = 1,
    cache=None,
    telemetry=None,
    logger=None,
    invariant_mode: str = "off",
    resume: bool = False,
    retry_quarantined: bool = False,
) -> SupervisedResult:
    """Run (or resume) a sweep under supervision.

    ``run_dir`` is the campaign directory; the run's ledger lives at
    ``<run_dir>/<run_id>/manifest.jsonl``.  With ``resume=True`` the
    manifest must exist; ``jobs`` may then be omitted — cells are
    rebuilt from the ledger — or supplied, in which case they must
    match the recorded (kind, name, seed) sequence exactly.
    """
    if invariant_mode not in _invariants.MODES:
        raise ConfigError(
            f"unknown invariant mode {invariant_mode!r} "
            f"(expected one of {_invariants.MODES})"
        )
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    policy = policy or SupervisePolicy()
    store = _as_cache(cache)

    run_dir = pathlib.Path(run_dir)
    if resume and run_id is None:
        raise ConfigError("resume requires an explicit run id")
    run_id = run_id or new_run_id()
    run_path = run_dir / run_id
    manifest = RunManifest(run_path / "manifest.jsonl")
    hb_dir = run_path / "heartbeats"

    prior: Optional[ManifestState] = None
    if resume:
        prior = manifest.replay()
        jobs = _resume_jobs(jobs, prior, manifest)
    else:
        jobs = list(jobs or ())
        if not jobs:
            raise ConfigError("no jobs to run")
        manifest.write_header(run_id, list(jobs), invariant_mode)
    jobs = [
        _with_cell_checkpoint(job, run_path, idx)
        for idx, job in enumerate(jobs)
    ]

    report = SweepReport(jobs=len(jobs))
    cells: List[Optional[CellResult]] = [None] * len(jobs)
    resumed = 0
    quarantined = 0
    retried = 0
    wall0 = time.perf_counter()

    def _emit(name: str, **args: Any) -> None:
        if telemetry is not None and telemetry.enabled:
            telemetry.instant(
                SWEEP,
                name,
                int((time.perf_counter() - wall0) * 1e9),
                lane="supervisor",
                **args,
            )

    if store is not None and store.on_corruption is None:
        def _report_corruption(key: str, reason: str) -> None:
            _emit("cache_corrupt", key=key, reason=reason)
            if logger is not None:
                logger.warning(
                    f"dropped corrupt cache entry {key[:12]}...: {reason}"
                )

        store.on_corruption = _report_corruption

    # 1. serve cells the ledger already settled, then cache hits.
    queue: List[_Pending] = []
    for idx, job in enumerate(jobs):
        rec = prior.cells.get(idx) if prior is not None else None
        if rec is not None and rec.state == DONE and rec.metrics is not None:
            cells[idx] = CellResult(
                job=job,
                metrics=rec.metrics,
                cached=True,
                tainted=rec.tainted,
                violations=tuple(rec.violations),
                attempts=max(rec.attempts, 1),
            )
            report.cached += 1
            resumed += 1
            continue
        if rec is not None and rec.state == QUARANTINED and not retry_quarantined:
            cells[idx] = CellResult(
                job=job,
                error=rec.error or "quarantined in a previous run",
                error_code=rec.error_code or "error",
                attempts=max(rec.attempts, 1),
            )
            report.executed += 1
            report.errors += 1
            quarantined += 1
            continue
        key = (
            store.key(job.kind, job.name, job.seed, job.spec)
            if store is not None
            else None
        )
        if key is not None:
            hit = store.load(key)
            if hit is not None:
                cells[idx] = CellResult(job=job, metrics=hit, cached=True)
                report.cached += 1
                manifest.record_done(idx, 0, hit)
                continue
        # Interrupted attempts resume their numbering: a cell killed
        # mid-attempt re-runs that attempt; one whose failure was
        # recorded moves on to the next.  Quarantined cells being
        # retried start a fresh budget.
        attempt = 1
        if rec is not None and rec.state == RUNNING:
            attempt = max(rec.attempts, 1)
        elif rec is not None and rec.state == RETRYING:
            attempt = rec.attempts + 1
        queue.append(_Pending(idx=idx, job=job, key=key, attempt=attempt))

    # 2. conclude one attempt: a final CellResult or a requeued retry.
    def _conclude(p: _Pending, envelope: Dict[str, Any]) -> None:
        nonlocal quarantined, retried
        error = envelope.get("error")
        if error is None:
            metrics = envelope.get("metrics")
            tainted = bool(envelope.get("tainted"))
            violations = list(envelope.get("violations", ()))
            manifest.record_done(
                p.idx, p.attempt, metrics, tainted=tainted, violations=violations
            )
            cell = CellResult(
                job=p.job,
                metrics=metrics,
                payload=envelope.get("payload"),
                error_code=None,
                tainted=tainted,
                violations=tuple(violations),
                pid=envelope.get("pid", 0),
                wall_s=envelope.get("wall_s", 0.0),
                process_s=envelope.get("process_s", 0.0),
                attempts=p.attempt,
            )
            cells[p.idx] = cell
            report.executed += 1
            if tainted:
                report.tainted += 1
            elif p.key is not None and metrics is not None and store is not None:
                store.store(p.key, metrics, meta={"job": p.job.label})
            report.cpu_s += cell.process_s
            if cell.pid:
                report.worker_cells[cell.pid] = (
                    report.worker_cells.get(cell.pid, 0) + 1
                )
                report.worker_cpu_s[cell.pid] = (
                    report.worker_cpu_s.get(cell.pid, 0.0) + cell.process_s
                )
            _emit("cell", job=p.job.label, ok=True, attempt=p.attempt)
            return
        code = envelope.get("error_code", "error")
        final = p.attempt >= policy.max_attempts
        manifest.record_failure(
            p.idx, p.attempt, error, error_code=code, final=final
        )
        if final:
            cells[p.idx] = CellResult(
                job=p.job,
                error=error,
                error_code=code,
                pid=envelope.get("pid", 0),
                wall_s=envelope.get("wall_s", 0.0),
                process_s=envelope.get("process_s", 0.0),
                attempts=p.attempt,
            )
            report.executed += 1
            report.errors += 1
            quarantined += 1
            _emit(
                "cell_quarantined",
                job=p.job.label,
                attempts=p.attempt,
                error_code=code,
            )
            if logger is not None:
                logger.warning(
                    f"quarantined {p.job.label} after {p.attempt} attempt(s): "
                    f"{error.splitlines()[0]}"
                )
            return
        retried += 1
        delay = policy.backoff_s(p.job, p.attempt)
        _emit(
            "cell_retry",
            job=p.job.label,
            attempt=p.attempt,
            backoff_s=delay,
            error_code=code,
        )
        if logger is not None:
            logger.warning(
                f"retrying {p.job.label} (attempt {p.attempt} failed: "
                f"{error.splitlines()[0]}; backoff {delay:.2f}s)"
            )
        queue.append(
            _Pending(
                idx=p.idx,
                job=p.job,
                key=p.key,
                attempt=p.attempt + 1,
                ready_at=time.monotonic() + delay,
            )
        )

    # 3. drain the queue: in-process when nothing needs a watchdog,
    #    per-cell forked processes otherwise.
    if queue and workers == 1 and not policy.watchdog:
        while queue:
            p = queue.pop(0)
            delay = p.ready_at - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            manifest.record_running(p.idx, p.attempt, pid=os.getpid())
            _conclude(p, _attempt_inprocess(p.job, p.attempt, invariant_mode))
    elif queue:
        hb_dir.mkdir(parents=True, exist_ok=True)
        ctx = _mp_context()
        active: Dict[int, _Active] = {}
        try:
            while queue or active:
                now = time.monotonic()
                # launch in submission order, respecting backoff gates
                for p in [p for p in queue if p.ready_at <= now]:
                    if len(active) >= workers:
                        break
                    queue.remove(p)
                    hb_path = None
                    if policy.stall_s > 0:
                        hb_path = str(hb_dir / f"cell-{p.idx}.hb")
                        try:
                            os.unlink(hb_path)
                        except OSError:
                            pass
                    parent_conn, child_conn = ctx.Pipe(duplex=False)
                    proc = ctx.Process(
                        target=_supervised_child,
                        args=(
                            child_conn,
                            p.job,
                            p.attempt,
                            invariant_mode,
                            hb_path,
                            policy.heartbeat_every,
                        ),
                        daemon=True,
                    )
                    proc.start()
                    child_conn.close()
                    manifest.record_running(p.idx, p.attempt, pid=proc.pid or 0)
                    active[p.idx] = _Active(
                        pending=p,
                        proc=proc,
                        conn=parent_conn,
                        hb_path=hb_path,
                        started=now,
                        last_progress=now,
                    )
                # poll in-flight cells
                progressed = False
                for idx in list(active):
                    a = active[idx]
                    envelope: Optional[Dict[str, Any]] = None
                    if a.conn.poll(0):
                        try:
                            envelope = a.conn.recv()
                            a.proc.join(5)
                        except EOFError:
                            a.proc.join(5)
                            envelope = {
                                "error": (
                                    f"worker died without a result "
                                    f"(exitcode {a.proc.exitcode})"
                                ),
                                "pid": a.proc.pid or 0,
                            }
                    elif not a.proc.is_alive():
                        envelope = {
                            "error": (
                                f"worker died without a result "
                                f"(exitcode {a.proc.exitcode})"
                            ),
                            "error_code": "error",
                            "pid": a.proc.pid or 0,
                        }
                    else:
                        now = time.monotonic()
                        kind: Optional[str] = None
                        if policy.timeout_s > 0 and now - a.started > policy.timeout_s:
                            kind, budget = "timeout", policy.timeout_s
                        elif policy.stall_s > 0 and a.hb_path is not None:
                            events = _read_heartbeat(a.hb_path)
                            if events is not None and events != a.last_events:
                                a.last_events = events
                                a.last_progress = now
                            if now - a.last_progress > policy.stall_s:
                                kind, budget = "stall", policy.stall_s
                        if kind is not None:
                            _kill(a.proc)
                            envelope = _timeout_envelope(
                                kind, budget, a.proc.pid or 0
                            )
                            _emit(
                                "cell_timeout",
                                job=a.pending.job.label,
                                kind=kind,
                                attempt=a.pending.attempt,
                            )
                    if envelope is not None:
                        a.conn.close()
                        del active[idx]
                        _conclude(a.pending, envelope)
                        progressed = True
                if not progressed:
                    time.sleep(policy.poll_s)
        finally:
            for a in active.values():  # interrupted: leave no orphans
                _kill(a.proc)

    report.workers = workers
    report.wall_s = time.perf_counter() - wall0
    if telemetry is not None and telemetry.enabled:
        ts = int(report.wall_s * 1e9)
        telemetry.counter(SWEEP, "cells", ts, float(report.jobs))
        telemetry.counter(SWEEP, "cache_hits", ts, float(report.cached))
        telemetry.counter(SWEEP, "errors", ts, float(report.errors))
        telemetry.counter(SWEEP, "quarantined", ts, float(quarantined))
        telemetry.counter(SWEEP, "retried_attempts", ts, float(retried))
    supervised = SupervisedResult(
        result=SweepResult(cells=list(cells), report=report),  # type: ignore[arg-type]
        run_id=run_id,
        manifest_path=manifest.path,
        resumed=resumed,
        quarantined=quarantined,
        retried_attempts=retried,
    )
    if logger is not None:
        logger.info(
            f"supervised sweep {run_id}: " + report.render()
            + (f"; {quarantined} quarantined" if quarantined else "")
        )
    return supervised


def _with_cell_checkpoint(
    job: SweepJob, run_path: pathlib.Path, idx: int
) -> SweepJob:
    """Arm barrier checkpointing on sharded cluster cells.

    A supervised sharded cell journals to
    ``<run>/checkpoints/cell-<idx>`` as it runs, so an attempt killed
    by a watchdog (or the whole sweep process dying) resumes its next
    attempt — including one launched by :func:`resume_sweep` — from the
    last barrier checkpoint instead of t=0.  The injected keys are
    execution-only (:data:`repro.parallel.cache.EXECUTION_ONLY_KEYS`):
    a restored cell replays to byte-identical metrics, so content
    addresses and the deterministic report are untouched.  Derived at
    runtime from the cell index, never recorded in the ledger, so a
    relocated ``run_dir`` resumes cleanly.
    """
    if job.kind != "cluster" or int(job.spec.get("shards", 1)) < 2:
        return job
    if job.spec.get("checkpoint_dir"):
        return job
    spec = dict(job.spec)
    spec["checkpoint_dir"] = str(run_path / "checkpoints" / f"cell-{idx}")
    spec["restore"] = True
    return SweepJob(job.kind, job.name, job.seed, spec)


def _kill(proc) -> None:
    """Terminate a worker, escalating to SIGKILL if it lingers."""
    if not proc.is_alive():
        return
    proc.terminate()
    proc.join(0.5)
    if proc.is_alive():
        proc.kill()
        proc.join(5)


def _resume_jobs(
    jobs: Optional[Sequence[SweepJob]],
    prior: ManifestState,
    manifest: RunManifest,
) -> List[SweepJob]:
    """The job list for a resumed run: rebuilt from the ledger, or the
    caller's list verified against it."""
    if jobs is not None:
        jobs = list(jobs)
        if len(jobs) != prior.n_jobs:
            raise ConfigError(
                f"resume job count mismatch: manifest has {prior.n_jobs} "
                f"cells, caller supplied {len(jobs)}"
            )
        for idx, job in enumerate(jobs):
            stored = prior.jobs[idx]
            if stored is not None and (
                stored.kind, stored.name, stored.seed
            ) != (job.kind, job.name, job.seed):
                raise ConfigError(
                    f"resume cell {idx} mismatch: manifest has "
                    f"{stored.label}, caller supplied {job.label}"
                )
        return jobs
    rebuilt: List[SweepJob] = []
    missing: List[int] = []
    for idx in range(prior.n_jobs):
        job = prior.jobs[idx]
        if job is None:
            rec = prior.cells.get(idx)
            if rec is not None and rec.state == DONE and rec.metrics is not None:
                # Settled: a placeholder label is enough to report it.
                job = SweepJob("unknown", f"cell-{idx}", 0, {})
            else:
                missing.append(idx)
                continue
        rebuilt.append(job)
    if missing:
        raise ConfigError(
            f"cells {missing} cannot be rebuilt from manifest "
            f"{manifest.path} (uncacheable specs); re-run with the "
            f"original job list to resume them"
        )
    return rebuilt


def resume_sweep(
    run_id: str,
    *,
    run_dir,
    jobs: Optional[Sequence[SweepJob]] = None,
    policy: Optional[SupervisePolicy] = None,
    workers: int = 1,
    cache=None,
    telemetry=None,
    logger=None,
    retry_quarantined: bool = False,
) -> SupervisedResult:
    """Resume an interrupted supervised sweep from its manifest.

    Completed cells are served from the ledger (their metrics were
    checkpointed in the ``done`` records); quarantined cells stay
    quarantined unless ``retry_quarantined``; everything else re-runs.
    The invariant mode is taken from the manifest header so a resumed
    run checks exactly what the original did.
    """
    manifest = RunManifest(pathlib.Path(run_dir) / run_id / "manifest.jsonl")
    prior = manifest.replay()
    return supervised_sweep(
        jobs,
        run_dir=run_dir,
        run_id=run_id,
        policy=policy,
        workers=workers,
        cache=cache,
        telemetry=telemetry,
        logger=logger,
        invariant_mode=prior.invariant_mode,
        resume=True,
        retry_quarantined=retry_quarantined,
    )
