"""Supervised, resumable experiment runtime.

Wraps the :mod:`repro.parallel` sweep engine with per-cell watchdogs
(wall-clock timeout + sim-progress stall detection), deterministic
seeded-backoff retries with a terminal *quarantined* state, and an
append-only JSONL run manifest that makes any interrupted sweep
resumable to a byte-identical report.  See
:mod:`repro.supervise.supervisor` for the runtime and
:mod:`repro.supervise.manifest` for the ledger format.
"""

from repro.supervise.manifest import (
    DONE,
    PENDING,
    QUARANTINED,
    RETRYING,
    RUNNING,
    RUN_SCHEMA,
    ManifestState,
    RunManifest,
    result_digest,
)
from repro.supervise.supervisor import (
    ATTEMPT_ENV,
    HeartbeatBus,
    SupervisePolicy,
    SupervisedResult,
    new_run_id,
    resume_sweep,
    supervised_sweep,
)

__all__ = [
    "ATTEMPT_ENV",
    "DONE",
    "HeartbeatBus",
    "ManifestState",
    "PENDING",
    "QUARANTINED",
    "RETRYING",
    "RUNNING",
    "RUN_SCHEMA",
    "RunManifest",
    "SupervisePolicy",
    "SupervisedResult",
    "new_run_id",
    "result_digest",
    "resume_sweep",
    "supervised_sweep",
]
