"""Append-only JSONL run manifest: the sweep's durable ledger.

A supervised sweep writes one manifest file next to the result cache.
Every line is one self-contained JSON record; the file is only ever
appended to, each append is a **single** ``O_APPEND`` ``write`` (plus
``fsync``), so a record is either fully present or entirely absent —
a ``SIGKILL`` mid-sweep can at worst leave one torn trailing line,
which replay detects and ignores.

Record types (the ``type`` field):

``run``
    Header: schema id, run id, package version, invariant mode, and
    the number of cells.  Always the first record.
``job``
    One per cell, in submission order: kind / name / seed plus the
    :func:`~repro.parallel.cache.canonical` encoding of the spec (or
    ``null`` when the spec is uncacheable — such a cell cannot be
    rebuilt from the manifest alone and resuming requires the caller
    to re-supply the job list).
``state``
    One per cell state transition::

        pending -> running -> done
                           -> retrying -> running -> ...
                           -> quarantined

    ``done`` records carry the metrics dict itself and its digest —
    resume never depends on the result cache being intact — plus the
    ``tainted`` flag and recorded invariant violations.  ``retrying``
    and ``quarantined`` carry the error summary and stable error code.

Replay folds the line sequence into a :class:`ManifestState`: the last
state per cell wins; ``running``/``retrying`` cells (interrupted by
the crash being resumed from) count as pending again.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro._version import __version__
from repro.errors import CacheCorruption, ConfigError, Uncacheable
from repro.parallel.cache import canonical, uncanonical
from repro.parallel.engine import SweepJob

#: Manifest schema identifier; bump when the record shape changes.
RUN_SCHEMA = "repro-run/1"

#: Cell states, in state-machine order.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
RETRYING = "retrying"
QUARANTINED = "quarantined"

#: States a resumed sweep does not re-run (``quarantined`` only skips
#: when ``--retry-quarantined`` is absent).
TERMINAL = (DONE, QUARANTINED)

__all__ = [
    "DONE",
    "ManifestState",
    "PENDING",
    "QUARANTINED",
    "RETRYING",
    "RUNNING",
    "RUN_SCHEMA",
    "RunManifest",
    "TERMINAL",
    "result_digest",
]


def result_digest(metrics: Dict[str, Any]) -> str:
    """SHA-256 over the canonical JSON of a cell's metrics.

    The digest is the identity of a result: a retried or resumed cell
    proves it reproduced the uninterrupted outcome by matching it.
    """
    blob = json.dumps(metrics, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class CellRecord:
    """Folded view of one cell after replay."""

    index: int
    state: str = PENDING
    attempts: int = 0
    digest: Optional[str] = None
    metrics: Optional[Dict[str, float]] = None
    tainted: bool = False
    violations: List[Dict[str, Any]] = field(default_factory=list)
    error: Optional[str] = None
    error_code: Optional[str] = None


@dataclass
class ManifestState:
    """Everything replay recovers from a manifest file."""

    run_id: str
    version: str
    invariant_mode: str
    n_jobs: int
    #: Rebuilt jobs, submission order; ``None`` where the stored spec
    #: was null (uncacheable) or no longer decodable.
    jobs: List[Optional[SweepJob]] = field(default_factory=list)
    cells: Dict[int, CellRecord] = field(default_factory=dict)
    #: Trailing torn/undecodable lines skipped during replay.
    skipped_lines: int = 0

    def cell(self, index: int) -> CellRecord:
        if index not in self.cells:
            self.cells[index] = CellRecord(index=index)
        return self.cells[index]

    def counts(self) -> Dict[str, int]:
        out = {PENDING: 0, RUNNING: 0, DONE: 0, RETRYING: 0, QUARANTINED: 0}
        for i in range(self.n_jobs):
            rec = self.cells.get(i)
            out[rec.state if rec is not None else PENDING] += 1
        return out


class RunManifest:
    """Writer/replayer for one run's JSONL manifest."""

    def __init__(self, path) -> None:
        self.path = pathlib.Path(path)

    # -- writing -------------------------------------------------------------
    def _append(self, record: Dict[str, Any]) -> None:
        """Atomically append one record (single O_APPEND write + fsync)."""
        line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, line.encode("utf-8"))
            os.fsync(fd)
        finally:
            os.close(fd)

    def write_header(
        self, run_id: str, jobs: List[SweepJob], invariant_mode: str
    ) -> None:
        """Start a fresh manifest: the run record plus one job record
        per cell, in submission order."""
        if self.path.exists():
            raise ConfigError(
                f"manifest {self.path} already exists; resume it instead "
                f"of starting a new run with the same id"
            )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._append(
            {
                "type": "run",
                "schema": RUN_SCHEMA,
                "run_id": run_id,
                "version": __version__,
                "invariant_mode": invariant_mode,
                "jobs": len(jobs),
            }
        )
        for index, job in enumerate(jobs):
            try:
                spec = canonical(dict(job.spec))
            except Uncacheable:
                spec = None
            self._append(
                {
                    "type": "job",
                    "index": index,
                    "kind": job.kind,
                    "name": job.name,
                    "seed": job.seed,
                    "spec": spec,
                }
            )

    def record_running(self, index: int, attempt: int, pid: int = 0) -> None:
        self._append(
            {
                "type": "state",
                "index": index,
                "attempt": attempt,
                "state": RUNNING,
                "pid": pid,
            }
        )

    def record_done(
        self,
        index: int,
        attempt: int,
        metrics: Optional[Dict[str, float]],
        *,
        tainted: bool = False,
        violations: Optional[List[Dict[str, Any]]] = None,
    ) -> Optional[str]:
        """Terminal success; returns the result digest (None for
        payload cells, whose results cannot be stored in the ledger)."""
        digest = result_digest(metrics) if metrics is not None else None
        record: Dict[str, Any] = {
            "type": "state",
            "index": index,
            "attempt": attempt,
            "state": DONE,
            "digest": digest,
            "metrics": metrics,
            "tainted": tainted,
        }
        if violations:
            record["violations"] = violations
        self._append(record)
        return digest

    def record_failure(
        self,
        index: int,
        attempt: int,
        error: str,
        *,
        error_code: str = "error",
        final: bool,
    ) -> None:
        """A failed attempt: ``retrying`` when budget remains,
        ``quarantined`` (terminal) otherwise."""
        self._append(
            {
                "type": "state",
                "index": index,
                "attempt": attempt,
                "state": QUARANTINED if final else RETRYING,
                "error": error.splitlines()[0] if error else "unknown",
                "error_code": error_code,
            }
        )

    # -- replay --------------------------------------------------------------
    def replay(self) -> ManifestState:
        """Fold the manifest into a :class:`ManifestState`.

        Tolerant of exactly the damage SIGKILL can cause: a torn final
        line is skipped.  Structural damage earlier in the file (it is
        append-only; nothing rewrites it) raises
        :class:`CacheCorruption`.
        """
        try:
            raw = self.path.read_bytes()
        except OSError as exc:
            raise ConfigError(
                f"cannot read run manifest {self.path}: {exc}"
            ) from None
        lines = raw.split(b"\n")
        state: Optional[ManifestState] = None
        skipped = 0
        for lineno, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                if lineno >= len(lines) - 2:
                    skipped += 1  # torn trailing write from a kill
                    continue
                raise CacheCorruption(
                    f"manifest {self.path} line {lineno + 1} is not JSON"
                )
            rtype = record.get("type")
            if rtype == "run":
                if record.get("schema") != RUN_SCHEMA:
                    raise CacheCorruption(
                        f"manifest schema {record.get('schema')!r} != "
                        f"{RUN_SCHEMA!r}"
                    )
                state = ManifestState(
                    run_id=record.get("run_id", ""),
                    version=record.get("version", ""),
                    invariant_mode=record.get("invariant_mode", "off"),
                    n_jobs=int(record.get("jobs", 0)),
                )
                state.jobs = [None] * state.n_jobs
            elif state is None:
                raise CacheCorruption(
                    f"manifest {self.path} does not start with a run record"
                )
            elif rtype == "job":
                index = int(record["index"])
                spec_doc = record.get("spec")
                if spec_doc is None:
                    continue  # uncacheable spec: cell is not resumable
                try:
                    spec = uncanonical(spec_doc)
                except CacheCorruption:
                    continue  # stored type no longer importable
                if 0 <= index < state.n_jobs:
                    state.jobs[index] = SweepJob(
                        kind=record["kind"],
                        name=record["name"],
                        seed=int(record["seed"]),
                        spec=spec,
                    )
            elif rtype == "state":
                index = int(record["index"])
                cell = state.cell(index)
                cell.state = record.get("state", PENDING)
                cell.attempts = max(cell.attempts, int(record.get("attempt", 0)))
                if cell.state == DONE:
                    cell.digest = record.get("digest")
                    cell.metrics = record.get("metrics")
                    cell.tainted = bool(record.get("tainted"))
                    cell.violations = list(record.get("violations", ()))
                    cell.error = None
                    cell.error_code = None
                elif cell.state in (RETRYING, QUARANTINED):
                    cell.error = record.get("error")
                    cell.error_code = record.get("error_code", "error")
            # Unknown record types are skipped: newer writers may add
            # them and an old reader should still replay what it knows.
        if state is None:
            raise CacheCorruption(f"manifest {self.path} is empty")
        state.skipped_lines = skipped
        return state

    def __repr__(self) -> str:
        return f"<RunManifest {str(self.path)!r}>"
