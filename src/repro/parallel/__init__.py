"""Parallel experiment engine: process-pool fan-out + result caching.

``repro.parallel`` turns the batch layers of the harness —
replications, comparisons, chaos campaigns, ablation/figure suites —
from serial for-loops into deterministic process-pool sweeps with a
content-addressed on-disk result cache.  The contract: **parallel
equals serial, bit for bit** — results merge in submission order and
every cell is a self-contained seeded simulation, so the pool width
(and the cache) can only change wall-clock time, never a float.

See ``docs/architecture.md`` §12 for the determinism contract and
cache-key design, and ``python -m repro sweep --help`` for the CLI.
"""

from repro.parallel.cache import (
    CELL_SCHEMA,
    ResultCache,
    Uncacheable,
    canonical,
    cell_key,
)
from repro.parallel.engine import (
    JOB_KINDS,
    CellResult,
    SweepJob,
    SweepReport,
    SweepResult,
    register_job_kind,
    run_sweep,
)

__all__ = [
    "CELL_SCHEMA",
    "CellResult",
    "JOB_KINDS",
    "ResultCache",
    "SweepJob",
    "SweepReport",
    "SweepResult",
    "Uncacheable",
    "canonical",
    "cell_key",
    "register_job_kind",
    "run_sweep",
]
