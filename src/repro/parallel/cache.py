"""Content-addressed on-disk cache for sweep cell results.

A sweep cell is one (scenario, seed, config) simulation.  Every cell
is deterministic — same inputs, bit-identical outputs — so its result
can be addressed purely by content: the cache key is a SHA-256 over a
*canonical* JSON encoding of ``(repro version, job kind, scenario
name, seed, scenario kwargs)``.  Re-running a sweep after an edit that
does not change those inputs is a pure cache hit; bumping the package
version, changing any kwarg, or changing a seed changes the key and
forces a recompute.

Design points:

* **Canonical encoding.**  Scenario kwargs are arbitrary small object
  graphs (``BenchExConfig`` dataclasses, pricing-policy instances,
  fault campaigns...).  :func:`canonical` lowers them to a JSON value
  deterministically: dataclasses become ``{"__dataclass__": qualname,
  fields...}``, plain objects become their qualified name plus their
  ``__dict__``, mappings are key-sorted at dump time.  Anything it
  cannot encode faithfully (lambdas, open handles) raises
  :class:`Uncacheable` and the engine simply runs that cell uncached —
  a correctness-preserving degradation, never a wrong hit.
* **Bit-exact round-trip.**  Python's ``json`` writes floats with
  ``repr`` (shortest round-trip form) and parses ``Infinity``/``NaN``
  constants, so cached metric values compare equal to freshly computed
  ones — the serial-equals-parallel contract survives the cache.
* **Atomic, concurrent-safe writes.**  Payloads are written to a
  temp file and ``os.replace``d into place, so a parallel sweep (or
  two sweeps sharing a cache directory) never observes a torn file;
  a corrupt or unreadable entry is treated as a miss and rewritten.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
from typing import Any, Dict, Optional

from repro._version import __version__

#: Payload schema identifier; bump when the stored document shape
#: changes (also invalidates every existing entry, on purpose).
CELL_SCHEMA = "repro-cell/1"


class Uncacheable(Exception):
    """A job spec contains values with no canonical encoding."""


def canonical(obj: Any) -> Any:
    """Lower ``obj`` to a deterministic JSON-encodable value.

    Raises :class:`Uncacheable` for values whose identity cannot be
    captured by content (callables, modules, objects without state).
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return obj
    if isinstance(obj, (list, tuple)):
        return [canonical(x) for x in obj]
    if isinstance(obj, dict):
        out: Dict[str, Any] = {}
        for k, v in obj.items():
            if not isinstance(k, (str, int, bool)) and k is not None:
                raise Uncacheable(f"mapping key {k!r} is not canonicalizable")
            out[str(k)] = canonical(v)
        return out
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        return {
            "__dataclass__": f"{cls.__module__}.{cls.__qualname__}",
            "fields": {
                f.name: canonical(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        }
    # numpy scalars (np.float64 etc.) expose item(); avoid importing
    # numpy here so the cache stays dependency-light.
    item = getattr(obj, "item", None)
    if callable(item) and type(obj).__module__.startswith("numpy"):
        return canonical(obj.item())
    if callable(obj):
        raise Uncacheable(f"callable {obj!r} has no canonical encoding")
    state = getattr(obj, "__dict__", None)
    if state is not None:
        cls = type(obj)
        return {
            "__object__": f"{cls.__module__}.{cls.__qualname__}",
            "state": canonical(state),
        }
    raise Uncacheable(f"value {obj!r} of type {type(obj)} is not canonicalizable")


def cell_key(
    kind: str,
    name: str,
    seed: int,
    spec: Dict[str, Any],
    version: str = __version__,
) -> str:
    """The content address (SHA-256 hex digest) of one sweep cell.

    Raises :class:`Uncacheable` when ``spec`` cannot be encoded.
    """
    doc = {
        "schema": CELL_SCHEMA,
        "version": version,
        "kind": kind,
        "name": name,
        "seed": seed,
        "spec": canonical(spec),
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Content-addressed result store rooted at one directory.

    Entries live at ``<root>/<key[:2]>/<key>.json`` (fan-out keeps
    directory listings sane for multi-thousand-cell sweeps).
    """

    def __init__(self, root, version: str = __version__) -> None:
        self.root = pathlib.Path(root)
        self.version = version
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def key(self, kind: str, name: str, seed: int, spec: Dict[str, Any]) -> Optional[str]:
        """The cell's content address, or ``None`` when uncacheable."""
        try:
            return cell_key(kind, name, seed, spec, version=self.version)
        except Uncacheable:
            return None

    def load(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored metrics payload, or ``None`` on miss/corruption."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, ValueError):
            return None
        if doc.get("schema") != CELL_SCHEMA:
            return None
        metrics = doc.get("metrics")
        return metrics if isinstance(metrics, dict) else None

    def store(self, key: str, metrics: Dict[str, Any], meta: Optional[Dict[str, Any]] = None) -> None:
        """Atomically persist ``metrics`` under ``key``."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {
            "schema": CELL_SCHEMA,
            "version": self.version,
            "metrics": metrics,
        }
        if meta:
            doc["meta"] = meta
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(doc, sort_keys=True) + "\n", encoding="utf-8")
        os.replace(tmp, path)

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def __repr__(self) -> str:
        return f"<ResultCache {str(self.root)!r} version={self.version}>"
