"""Content-addressed on-disk cache for sweep cell results.

A sweep cell is one (scenario, seed, config) simulation.  Every cell
is deterministic — same inputs, bit-identical outputs — so its result
can be addressed purely by content: the cache key is a SHA-256 over a
*canonical* JSON encoding of ``(repro version, job kind, scenario
name, seed, scenario kwargs)``.  Re-running a sweep after an edit that
does not change those inputs is a pure cache hit; bumping the package
version, changing any kwarg, or changing a seed changes the key and
forces a recompute.

Design points:

* **Canonical encoding.**  Scenario kwargs are arbitrary small object
  graphs (``BenchExConfig`` dataclasses, pricing-policy instances,
  fault campaigns...).  :func:`canonical` lowers them to a JSON value
  deterministically: dataclasses become ``{"__dataclass__": qualname,
  fields...}``, plain objects become their qualified name plus their
  ``__dict__``, mappings are key-sorted at dump time.  Anything it
  cannot encode faithfully (lambdas, open handles) raises
  :class:`Uncacheable` and the engine simply runs that cell uncached —
  a correctness-preserving degradation, never a wrong hit.
* **Bit-exact round-trip.**  Python's ``json`` writes floats with
  ``repr`` (shortest round-trip form) and parses ``Infinity``/``NaN``
  constants, so cached metric values compare equal to freshly computed
  ones — the serial-equals-parallel contract survives the cache.
* **Atomic, concurrent-safe writes.**  Payloads are written to a
  temp file and ``os.replace``d into place, so a parallel sweep (or
  two sweeps sharing a cache directory) never observes a torn file;
  a corrupt, truncated or schema-mismatched entry is treated as a
  miss, **deleted** (so it cannot re-trip every future sweep) and
  reported through :attr:`ResultCache.on_corruption` — never a crash,
  never a wrong hit.
"""

from __future__ import annotations

import dataclasses
import errno
import hashlib
import importlib
import json
import os
import pathlib
from typing import Any, Callable, Dict, Optional

from repro._version import __version__
from repro.errors import CacheCorruption, Uncacheable

#: Payload schema identifier; bump when the stored document shape
#: changes (also invalidates every existing entry, on purpose).
CELL_SCHEMA = "repro-cell/1"

#: Spec knobs that change how a cell *executes*, never what it
#: computes, and are therefore excluded from its content address.
#: ``shards`` partitions a cluster cell across workers bit-identically
#: (:mod:`repro.sim.shard`), so a warm entry written by a serial run
#: must hit for a sharded one and vice versa; ``coalesce`` only picks
#: how many lookahead windows ride one barrier (execution shape, same
#: bytes), so it is equally address-neutral.  The checkpoint knobs
#: (:mod:`repro.sim.checkpoint`) are likewise execution-only: a cell
#: restored from a barrier checkpoint replays to byte-identical
#: metrics, so where (or whether) it journals cannot move its address.
EXECUTION_ONLY_KEYS = frozenset(
    {"shards", "coalesce", "checkpoint_dir", "checkpoint_every", "restore"}
)

__all__ = [
    "CELL_SCHEMA",
    "EXECUTION_ONLY_KEYS",
    "ResultCache",
    "Uncacheable",
    "canonical",
    "cell_key",
    "uncanonical",
]


def canonical(obj: Any) -> Any:
    """Lower ``obj`` to a deterministic JSON-encodable value.

    Raises :class:`Uncacheable` for values whose identity cannot be
    captured by content (callables, modules, objects without state).
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return obj
    if isinstance(obj, (list, tuple)):
        return [canonical(x) for x in obj]
    if isinstance(obj, dict):
        out: Dict[str, Any] = {}
        for k, v in obj.items():
            if not isinstance(k, (str, int, bool)) and k is not None:
                raise Uncacheable(f"mapping key {k!r} is not canonicalizable")
            out[str(k)] = canonical(v)
        return out
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        return {
            "__dataclass__": f"{cls.__module__}.{cls.__qualname__}",
            "fields": {
                f.name: canonical(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        }
    # numpy scalars (np.float64 etc.) expose item(); avoid importing
    # numpy here so the cache stays dependency-light.
    item = getattr(obj, "item", None)
    if callable(item) and type(obj).__module__.startswith("numpy"):
        return canonical(obj.item())
    if callable(obj):
        raise Uncacheable(f"callable {obj!r} has no canonical encoding")
    state = getattr(obj, "__dict__", None)
    if state is not None:
        cls = type(obj)
        return {
            "__object__": f"{cls.__module__}.{cls.__qualname__}",
            "state": canonical(state),
        }
    raise Uncacheable(f"value {obj!r} of type {type(obj)} is not canonicalizable")


def _resolve_qualname(qualname: str) -> type:
    """``module.Qual.Name`` -> the class object, or raise CacheCorruption."""
    module_name, _, attr_path = qualname.rpartition(".")
    # Qualnames may nest (Outer.Inner); peel module segments until an
    # importable module is found, then getattr down the remainder.
    parts = qualname.split(".")
    for split in range(len(parts) - 1, 0, -1):
        module_name = ".".join(parts[:split])
        try:
            obj: Any = importlib.import_module(module_name)
        except ImportError:
            continue
        try:
            for attr in parts[split:]:
                obj = getattr(obj, attr)
        except AttributeError:
            break
        if isinstance(obj, type):
            return obj
        break
    raise CacheCorruption(f"cannot resolve stored type {qualname!r}")


def uncanonical(value: Any) -> Any:
    """Rebuild a Python value from its :func:`canonical` encoding.

    The inverse used by run-manifest replay: tagged dataclass/object
    documents are re-instantiated by qualified name.  Lossy only where
    ``canonical`` is (tuples come back as lists, non-string mapping
    keys come back as strings); raises :class:`CacheCorruption` when a
    stored type no longer resolves.
    """
    if isinstance(value, list):
        return [uncanonical(v) for v in value]
    if not isinstance(value, dict):
        return value
    if "__dataclass__" in value:
        cls = _resolve_qualname(value["__dataclass__"])
        fields = {k: uncanonical(v) for k, v in value.get("fields", {}).items()}
        init_names = {
            f.name for f in dataclasses.fields(cls) if f.init
        }
        try:
            return cls(**{k: v for k, v in fields.items() if k in init_names})
        except TypeError as exc:
            raise CacheCorruption(
                f"cannot rebuild dataclass {cls.__qualname__}: {exc}"
            ) from None
    if "__object__" in value:
        cls = _resolve_qualname(value["__object__"])
        obj = cls.__new__(cls)
        state = value.get("state", {})
        if not isinstance(state, dict):
            raise CacheCorruption(
                f"stored object state for {cls.__qualname__} is not a mapping"
            )
        obj.__dict__.update({k: uncanonical(v) for k, v in state.items()})
        return obj
    return {k: uncanonical(v) for k, v in value.items()}


def cell_key(
    kind: str,
    name: str,
    seed: int,
    spec: Dict[str, Any],
    version: str = __version__,
) -> str:
    """The content address (SHA-256 hex digest) of one sweep cell.

    Execution-only knobs (:data:`EXECUTION_ONLY_KEYS`) are stripped
    before hashing — they select *how* the cell runs, not what it
    computes.  Raises :class:`Uncacheable` when ``spec`` cannot be
    encoded.
    """
    doc = {
        "schema": CELL_SCHEMA,
        "version": version,
        "kind": kind,
        "name": name,
        "seed": seed,
        "spec": canonical(
            {k: v for k, v in spec.items() if k not in EXECUTION_ONLY_KEYS}
        ),
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Content-addressed result store rooted at one directory.

    Entries live at ``<root>/<key[:2]>/<key>.json`` (fan-out keeps
    directory listings sane for multi-thousand-cell sweeps).
    """

    def __init__(
        self,
        root,
        version: str = __version__,
        on_corruption: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        self.root = pathlib.Path(root)
        self.version = version
        self.root.mkdir(parents=True, exist_ok=True)
        #: Called as ``on_corruption(key, reason)`` whenever a corrupt
        #: entry is dropped; defaults to a logger warning (the sweep
        #: engine wires a telemetry emitter in).
        self.on_corruption = on_corruption
        #: Corrupt entries dropped over this cache's lifetime.
        self.corrupt_dropped = 0

    def _path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def key(self, kind: str, name: str, seed: int, spec: Dict[str, Any]) -> Optional[str]:
        """The cell's content address, or ``None`` when uncacheable."""
        try:
            return cell_key(kind, name, seed, spec, version=self.version)
        except Uncacheable:
            return None

    def load(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored metrics payload, or ``None`` on miss/corruption.

        A genuinely absent entry is a plain miss.  An entry that exists
        but cannot be realized — unreadable, truncated/invalid JSON,
        wrong schema, mis-shaped payload — is *deleted* and reported
        through :attr:`on_corruption`, then treated as a miss: the
        cell recomputes and the rewritten entry heals the cache.
        """
        path = self._path(key)
        try:
            return self._read_entry(path)
        except FileNotFoundError:
            return None
        except CacheCorruption as exc:
            self._drop_corrupt(path, key, str(exc))
            return None

    def _read_entry(self, path: pathlib.Path) -> Dict[str, Any]:
        """Read and validate one entry; raises :class:`CacheCorruption`
        for anything other than a clean hit or a clean miss."""
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except OSError as exc:
            if exc.errno == errno.ENOENT:
                raise FileNotFoundError(path) from None
            raise CacheCorruption(f"unreadable entry: {exc}") from None
        except ValueError as exc:
            raise CacheCorruption(f"invalid JSON: {exc}") from None
        if not isinstance(doc, dict) or doc.get("schema") != CELL_SCHEMA:
            got = doc.get("schema") if isinstance(doc, dict) else type(doc).__name__
            raise CacheCorruption(
                f"schema mismatch: expected {CELL_SCHEMA!r}, got {got!r}"
            )
        metrics = doc.get("metrics")
        if not isinstance(metrics, dict):
            raise CacheCorruption(
                f"metrics payload is {type(metrics).__name__}, not a mapping"
            )
        return metrics

    def _drop_corrupt(self, path: pathlib.Path, key: str, reason: str) -> None:
        try:
            os.unlink(path)
        except OSError:  # already gone or unremovable: miss either way
            pass
        self.corrupt_dropped += 1
        if self.on_corruption is not None:
            self.on_corruption(key, reason)
        else:
            from repro.telemetry import get_logger

            get_logger().warning(
                f"dropped corrupt cache entry {key[:12]}...: {reason}"
            )

    def store(self, key: str, metrics: Dict[str, Any], meta: Optional[Dict[str, Any]] = None) -> None:
        """Atomically persist ``metrics`` under ``key``."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {
            "schema": CELL_SCHEMA,
            "version": self.version,
            "metrics": metrics,
        }
        if meta:
            doc["meta"] = meta
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(doc, sort_keys=True) + "\n", encoding="utf-8")
        os.replace(tmp, path)

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def __repr__(self) -> str:
        return f"<ResultCache {str(self.root)!r} version={self.version}>"
