"""Deterministic process-pool experiment engine (``repro sweep``).

Everything above a single scenario run — replications, comparisons,
chaos campaigns, ablation suites, figure sets — is a batch of
*independent* seeded simulations.  This engine fans those cells out to
``jobs`` worker processes and merges results **in submission order**,
so serial and parallel execution produce byte-identical aggregates:

* a cell is a picklable :class:`SweepJob` — kind + name + seed + plain
  kwargs; the worker entrypoint rebuilds the scenario from kwargs, so
  no ``Environment``/process/generator objects ever cross the pipe;
* each cell runs in a fresh deterministic simulation seeded only by
  its job spec, so *where* it runs (parent, worker, yesterday's
  worker via the cache) cannot change its floats;
* results are merged by submission index, never completion order;
* a worker exception is captured per cell (traceback text in
  :attr:`CellResult.error`); a hard worker crash (killed process)
  surfaces as per-cell errors for the affected cells instead of a
  hung or opaquely broken pool.

The optional content-addressed :class:`~repro.parallel.cache.ResultCache`
short-circuits cells whose (version, kind, name, kwargs, seed) address
already has a stored result — a warm re-run of a sweep costs file
reads only.

Per-worker execution summaries (cells run, process/wall time) are
folded into one :class:`SweepReport`, and — when a telemetry bus is
passed — the sweep emits ``sweep``-category records so campaign-level
orchestration is visible on the same bus as everything else.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigError, ReproError
from repro.parallel.cache import ResultCache
from repro.sim import invariants as _invariants
from repro.telemetry.bus import SWEEP

#: Registered cell kinds: kind -> runner(job) returning either a
#: ``dict`` of float metrics (cacheable) or an arbitrary picklable
#: payload (fanned out but never cached).
JOB_KINDS: Dict[str, Callable[["SweepJob"], Any]] = {}


def register_job_kind(kind: str, runner: Callable[["SweepJob"], Any]) -> None:
    """Register (or replace) the runner for a cell kind."""
    JOB_KINDS[kind] = runner


@dataclass(frozen=True)
class SweepJob:
    """One picklable sweep cell: what to run, not how it was built."""

    kind: str
    name: str
    seed: int
    spec: Dict[str, Any] = field(default_factory=dict)

    @property
    def label(self) -> str:
        return f"{self.kind}:{self.name}@s{self.seed}"


@dataclass
class CellResult:
    """Outcome of one cell, in submission order."""

    job: SweepJob
    #: Float metrics (scenario/chaos cells); ``None`` for payload cells
    #: and failed cells.
    metrics: Optional[Dict[str, float]] = None
    #: Arbitrary result object for registry-style cells.
    payload: Any = None
    cached: bool = False
    error: Optional[str] = None
    #: Stable machine-readable error code (``ReproError.code``) when the
    #: failure was a structured repro error; ``"error"`` otherwise.
    error_code: Optional[str] = None
    #: True when the cell completed but a runtime invariant guard fired
    #: in ``record`` mode — the numbers exist but are suspect, and the
    #: cell is excluded from the result cache.
    tainted: bool = False
    #: Recorded invariant violations (plain dicts, see
    #: :meth:`repro.sim.invariants.Violation.to_dict`).
    violations: Tuple[Dict[str, Any], ...] = ()
    #: Attempts it took to conclude this cell (supervised runs retry;
    #: the plain engine always concludes on attempt 1).
    attempts: int = 1
    pid: int = 0
    wall_s: float = 0.0
    process_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class SweepReport:
    """Folded per-worker execution summary of one sweep."""

    jobs: int = 0
    executed: int = 0
    cached: int = 0
    errors: int = 0
    #: Cells that completed but tripped a runtime invariant guard.
    tainted: int = 0
    workers: int = 1
    wall_s: float = 0.0
    #: Sum of per-cell process time measured *inside* the executing
    #: process — under multiprocessing this is the number wall clock
    #: cannot give you (children's CPU never shows in the parent's
    #: ``time.process_time``).
    cpu_s: float = 0.0
    worker_cells: Dict[int, int] = field(default_factory=dict)
    worker_cpu_s: Dict[int, float] = field(default_factory=dict)

    @property
    def utilization(self) -> float:
        """Mean fraction of the pool kept busy (cpu_s / wall_s*workers)."""
        if self.wall_s <= 0 or self.workers <= 0:
            return 0.0
        return self.cpu_s / (self.wall_s * self.workers)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "jobs": self.jobs,
            "executed": self.executed,
            "cached": self.cached,
            "errors": self.errors,
            "tainted": self.tainted,
            "workers": self.workers,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "utilization": self.utilization,
            "worker_cells": {str(k): v for k, v in sorted(self.worker_cells.items())},
            "worker_cpu_s": {
                str(k): v for k, v in sorted(self.worker_cpu_s.items())
            },
        }

    def render(self) -> str:
        taint = f", {self.tainted} tainted" if self.tainted else ""
        return (
            f"sweep: {self.jobs} cells ({self.cached} cached, "
            f"{self.executed} executed, {self.errors} errors{taint}) on "
            f"{self.workers} worker(s) in {self.wall_s:.2f}s wall / "
            f"{self.cpu_s:.2f}s cpu ({self.utilization * 100:.0f}% pool "
            f"utilization)"
        )


@dataclass
class SweepResult:
    """All cell results (submission order) plus the folded report."""

    cells: List[CellResult]
    report: SweepReport

    def values(self, metric: str) -> Tuple[float, ...]:
        """The given metric across cells, submission order.

        Raises :class:`ConfigError` if any cell failed or lacks it.
        """
        out = []
        for cell in self.cells:
            if cell.metrics is None or metric not in cell.metrics:
                raise ConfigError(
                    f"cell {cell.job.label} has no metric {metric!r} "
                    f"(error: {cell.error or 'none'})"
                )
            out.append(cell.metrics[metric])
        return tuple(out)

    def failed(self) -> List[CellResult]:
        return [c for c in self.cells if not c.ok]


# -- worker entrypoint -------------------------------------------------------

def _execute_job(job: SweepJob) -> Dict[str, Any]:
    """Run one cell; returns a picklable result envelope.

    This is the single execution path for serial *and* parallel runs —
    the serial engine calls it in-process, the pool imports it by
    reference — which is what makes "parallel equals serial" a
    structural property rather than a testing aspiration.
    """
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    envelope: Dict[str, Any] = {"pid": os.getpid()}
    # Per-cell invariant scoping: each cell gets its own fresh monitor
    # at the ambient mode, so violations recorded by one cell never
    # bleed into its neighbours — in serial runs (shared process) and
    # forked pools (inherited parent monitor) alike.  The envelope
    # carries the violations back as plain dicts.
    ambient = _invariants.current()
    mon = _invariants.monitor_for_mode(ambient.mode)
    _invariants.install(mon)
    try:
        runner = JOB_KINDS.get(job.kind)
        if runner is None:
            raise ConfigError(
                f"unknown sweep job kind {job.kind!r} (have {sorted(JOB_KINDS)})"
            )
        out = runner(job)
        if isinstance(out, Mapping):
            envelope["metrics"] = dict(out)
        else:
            envelope["payload"] = out
    except BaseException as exc:  # captured per-cell, reported upstream
        envelope["error"] = (
            f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
        )
        if isinstance(exc, ReproError):
            envelope["error_code"] = exc.code
    finally:
        _invariants.install(ambient)
    if mon.tainted:
        envelope["tainted"] = True
        envelope["violations"] = mon.to_dicts()
    envelope["process_s"] = time.process_time() - cpu0
    envelope["wall_s"] = time.perf_counter() - wall0
    return envelope


# -- built-in cell kinds -----------------------------------------------------

def _run_scenario_cell(job: SweepJob) -> Dict[str, float]:
    """Rebuild + run one scenario replication cell from kwargs."""
    from repro.experiments.scenarios import run_scenario

    result = run_scenario(
        f"{job.name}-s{job.seed}", seed=job.seed, **job.spec
    )
    b = result.breakdown
    return {
        "total_mean": b.total_mean,
        "total_std": b.total_std,
        "requests": float(b.n),
    }


def _run_chaos_cell(job: SweepJob) -> Dict[str, float]:
    """Rebuild + run one chaos replication cell from kwargs."""
    from repro.experiments.scenarios import run_chaos_scenario

    chaos = run_chaos_scenario(job.name, seed=job.seed, **job.spec)
    report = chaos.report
    worst = report.worst_ttr_ms
    return {
        "excursion_us_s": report.total_excursion_us_s,
        "worst_ttr_ms": float("inf") if worst is None else worst,
        "recovered": 1.0 if report.recovered_all else 0.0,
    }


def _run_registry_cell(job: SweepJob) -> Any:
    """Run one experiment-registry cell (figure or ablation)."""
    registry_name = job.spec.get("registry")
    if registry_name == "figures":
        from repro.experiments.figures import ALL_FIGURES as registry
    elif registry_name == "ablations":
        from repro.experiments.ablations import ALL_ABLATIONS as registry
    else:
        raise ConfigError(f"unknown experiment registry {registry_name!r}")
    try:
        fn = registry[job.name]
    except KeyError:
        raise ConfigError(
            f"unknown experiment {job.name!r} in registry {registry_name!r}"
        ) from None
    scale = job.spec.get("scale")
    if scale:
        os.environ["REPRO_SCALE"] = scale
    return fn(seed=job.seed)


def _run_cluster_cell(job: SweepJob) -> Dict[str, float]:
    """Rebuild + run one cluster-scale cell from kwargs.

    ``job.name`` is a :data:`~repro.experiments.cluster.CLUSTER_SPECS`
    preset; ``spec`` may override ``sim_s`` and ``shards``.  The result
    is a plain float dict, so cluster cells are content-addressed
    cacheable like scenario cells.  ``shards`` changes only how a cell
    executes, never its metrics (sharding is bit-identical), so a warm
    cache entry written by a serial run stays valid for a sharded one
    and vice versa — which is also why ``shards`` is excluded from the
    cell's content address (see
    :data:`repro.parallel.cache.EXECUTION_ONLY_KEYS`).

    ``checkpoint_dir``/``checkpoint_every``/``restore`` thread the
    barrier-aligned checkpointing of :mod:`repro.sim.checkpoint`
    through to the sharded runtime — also execution-only (a restored
    cell replays to the same bytes), so the supervisor can inject them
    without disturbing content addresses.
    """
    from repro.experiments.cluster import run_cluster

    checkpoint_dir = job.spec.get("checkpoint_dir")
    return run_cluster(
        job.name,
        seed=job.seed,
        sim_s=job.spec.get("sim_s"),
        shards=int(job.spec.get("shards", 1)),
        checkpoint_dir=str(checkpoint_dir) if checkpoint_dir else None,
        checkpoint_every=job.spec.get("checkpoint_every"),
        restore=bool(job.spec.get("restore", False)),
    ).metrics()


def _run_service_cell(job: SweepJob) -> Dict[str, float]:
    """Rebuild + run one deterministic service replay cell.

    ``job.name`` is a :data:`~repro.service.replay.SERVICE_SPECS`
    preset; ``spec`` entries override the preset (e.g. a smaller
    ``requests`` for smoke runs).  The metrics include ``digest48``
    (the first 48 bits of the response-log digest as a float), so a
    cache hit is also a determinism check: a warm cell that replays to
    a different digest would surface as a metric mismatch.
    """
    from repro.service.replay import run_service_replay

    return run_service_replay(
        job.name, seed=job.seed, overrides=dict(job.spec) or None
    ).metrics()


register_job_kind("scenario", _run_scenario_cell)
register_job_kind("chaos", _run_chaos_cell)
register_job_kind("registry", _run_registry_cell)
register_job_kind("cluster", _run_cluster_cell)
register_job_kind("service", _run_service_cell)


# -- the engine --------------------------------------------------------------

def _as_cache(cache) -> Optional[ResultCache]:
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


def _mp_context():
    """Fork when available: workers inherit registered job kinds and
    imported modules (spawn would re-import a bare interpreter)."""
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def run_sweep(
    jobs: Sequence[SweepJob],
    *,
    workers: int = 1,
    cache=None,
    telemetry=None,
    logger=None,
) -> SweepResult:
    """Run every cell; merge results in submission order.

    ``workers`` is the process-pool width (1 = in-process serial
    execution through the very same cell entrypoint).  ``cache`` is a
    :class:`ResultCache`, a directory path, or ``None``; cached cells
    are served without touching the pool.  ``telemetry`` is an
    optional :class:`~repro.telemetry.TelemetryBus` the sweep reports
    orchestration records to (timestamps are wall-clock nanoseconds
    since sweep start — sweeps happen in real time, not sim time).
    """
    jobs = list(jobs)
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    store = _as_cache(cache)
    report = SweepReport(jobs=len(jobs))
    cells: List[Optional[CellResult]] = [None] * len(jobs)
    wall0 = time.perf_counter()

    if store is not None and store.on_corruption is None:
        def _report_corruption(key: str, reason: str) -> None:
            if telemetry is not None and telemetry.enabled:
                telemetry.instant(
                    SWEEP,
                    "cache_corrupt",
                    int((time.perf_counter() - wall0) * 1e9),
                    lane="cache",
                    key=key,
                    reason=reason,
                )
            if logger is not None:
                logger.warning(
                    f"dropped corrupt cache entry {key[:12]}...: {reason}"
                )

        store.on_corruption = _report_corruption

    def _emit(cell: CellResult) -> None:
        if telemetry is not None and telemetry.enabled:
            telemetry.event(
                SWEEP,
                "cell",
                int((time.perf_counter() - wall0) * 1e9),
                lane=f"worker-{cell.pid}" if cell.pid else "cache",
                job=cell.job.label,
                cached=cell.cached,
                ok=cell.ok,
                wall_s=cell.wall_s,
            )

    # 1. serve cache hits, collect pending cells.
    pending: List[Tuple[int, SweepJob, Optional[str]]] = []
    for idx, job in enumerate(jobs):
        key = (
            store.key(job.kind, job.name, job.seed, job.spec)
            if store is not None
            else None
        )
        if key is not None:
            hit = store.load(key)
            if hit is not None:
                cell = CellResult(job=job, metrics=hit, cached=True)
                cells[idx] = cell
                report.cached += 1
                _emit(cell)
                continue
        pending.append((idx, job, key))

    # 2. execute the rest — one entrypoint, in-process or pooled.
    def _finish(idx: int, job: SweepJob, key: Optional[str], envelope: Dict[str, Any]) -> None:
        cell = CellResult(
            job=job,
            metrics=envelope.get("metrics"),
            payload=envelope.get("payload"),
            error=envelope.get("error"),
            error_code=envelope.get(
                "error_code", "error" if envelope.get("error") else None
            ),
            tainted=bool(envelope.get("tainted")),
            violations=tuple(envelope.get("violations", ())),
            pid=envelope.get("pid", 0),
            wall_s=envelope.get("wall_s", 0.0),
            process_s=envelope.get("process_s", 0.0),
        )
        cells[idx] = cell
        report.executed += 1
        if cell.tainted:
            report.tainted += 1
        if cell.error is not None:
            report.errors += 1
        elif (
            key is not None
            and cell.metrics is not None
            and store is not None
            and not cell.tainted
        ):
            # Tainted metrics never enter the cache: a warm hit carries
            # no violation record, so caching them would launder the
            # taint into a future "clean" sweep.
            store.store(key, cell.metrics, meta={"job": cell.job.label})
        report.cpu_s += cell.process_s
        if cell.pid:
            report.worker_cells[cell.pid] = report.worker_cells.get(cell.pid, 0) + 1
            report.worker_cpu_s[cell.pid] = (
                report.worker_cpu_s.get(cell.pid, 0.0) + cell.process_s
            )
        _emit(cell)
        if logger is not None:
            status = "error" if cell.error else "ok"
            logger.debug(
                f"sweep cell {cell.job.label}: {status} "
                f"({cell.wall_s:.2f}s wall, pid {cell.pid})"
            )

    pool_width = min(workers, max(len(pending), 1))
    report.workers = pool_width
    if pending and pool_width == 1:
        for idx, job, key in pending:
            _finish(idx, job, key, _execute_job(job))
    elif pending:
        with ProcessPoolExecutor(
            max_workers=pool_width, mp_context=_mp_context()
        ) as pool:
            futures = [
                (idx, job, key, pool.submit(_execute_job, job))
                for idx, job, key in pending
            ]
            for idx, job, key, future in futures:
                try:
                    envelope = future.result()
                except BrokenProcessPool as exc:
                    envelope = {
                        "error": (
                            "worker process died while this cell was in "
                            f"flight (or queued behind the crash): {exc!r}"
                        ),
                        "pid": 0,
                    }
                except BaseException as exc:  # cancelled / unpicklable result
                    envelope = {
                        "error": f"{type(exc).__name__}: {exc}",
                        "pid": 0,
                    }
                _finish(idx, job, key, envelope)

    report.wall_s = time.perf_counter() - wall0
    if telemetry is not None and telemetry.enabled:
        ts = int(report.wall_s * 1e9)
        telemetry.counter(SWEEP, "cells", ts, float(report.jobs))
        telemetry.counter(SWEEP, "cache_hits", ts, float(report.cached))
        telemetry.counter(SWEEP, "errors", ts, float(report.errors))
        if report.tainted:
            telemetry.counter(SWEEP, "tainted", ts, float(report.tainted))
    if logger is not None:
        logger.debug(report.render())
    return SweepResult(cells=list(cells), report=report)  # type: ignore[arg-type]
