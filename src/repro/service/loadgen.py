"""Seeded synthetic load: open-loop arrivals, mixed ops, stable digests.

The generator is split so every layer can be tested and replayed on
its own:

* **Arrival processes** (:func:`arrival_offsets`) — seeded open-loop
  generators of monotone nanosecond offsets.  ``constant`` is a
  Poisson process at the target rate, ``bursty`` modulates it with a
  seeded on/off cycle (5x rate in bursts, 0.2x in gaps), ``diurnal``
  modulates it sinusoidally over a configurable virtual day.  Open
  loop means arrivals never wait for responses — the schedule is fixed
  up front, so overload shows up as queue rejections, not as a
  politely self-throttling client.
* **Trace synthesis** (:func:`build_trace`) — turns arrivals into
  concrete requests: admissions for ``vm0..vmN-1`` first, then a
  seeded operation mix (order-heavy by default, log-uniform order
  sizes across the clamp window), a final ``flush``.  A trace is plain
  data — a list of ``(op, params, at_ns)`` dicts — so the same trace
  can cross sockets or be replayed in process.
* **Execution** (:func:`run_trace`) — drives a
  :class:`~repro.service.client.ServiceClient` with window-limited
  pipelining and collects every response (or error) into a response
  log keyed by request id.
* **Digesting** (:func:`response_digest`) — SHA-256 over the canonical
  JSON response lines sorted by request id.  In sim mode, fixed seed +
  fixed trace ⇒ byte-identical log ⇒ equal digest; this is the value
  the determinism golden and the CI smoke test pin.
"""

from __future__ import annotations

import hashlib
import math
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.errors import ConfigError, ServiceError
from repro.service.protocol import canonical_json
from repro.service.world import MAX_ORDER_BYTES, MIN_ORDER_BYTES

ARRIVAL_KINDS = ("constant", "bursty", "diurnal")

#: Default operation mix (relative weights): order-heavy, like a
#: trading gateway's steady state.
DEFAULT_MIX: Dict[str, float] = {
    "order": 0.70,
    "price": 0.12,
    "bid": 0.06,
    "ask": 0.06,
    "stats": 0.03,
    "flush": 0.03,
}


def arrival_offsets(
    kind: str,
    count: int,
    rate_per_s: float,
    seed: int,
    *,
    burst_period_s: float = 0.050,
    burst_duty: float = 0.3,
    day_s: float = 1.0,
) -> List[int]:
    """Generate ``count`` monotone arrival offsets (ns) at a mean rate.

    ``kind`` picks the modulation: ``constant`` (plain Poisson),
    ``bursty`` (on/off: 5x rate for ``burst_duty`` of each
    ``burst_period_s``, 0.2x otherwise) or ``diurnal`` (sinusoidal
    rate over a virtual day of ``day_s`` seconds).
    """
    if kind not in ARRIVAL_KINDS:
        raise ConfigError(
            f"unknown arrival kind {kind!r} (have {', '.join(ARRIVAL_KINDS)})"
        )
    if count < 0:
        raise ConfigError(f"count must be >= 0, got {count}")
    if rate_per_s <= 0:
        raise ConfigError(f"rate_per_s must be positive, got {rate_per_s}")
    rng = random.Random(seed)
    offsets: List[int] = []
    t_s = 0.0
    for _ in range(count):
        if kind == "constant":
            factor = 1.0
        elif kind == "bursty":
            phase = (t_s % burst_period_s) / burst_period_s
            factor = 5.0 if phase < burst_duty else 0.2
        else:  # diurnal
            phase = (t_s % day_s) / day_s
            factor = max(1.0 + 0.9 * math.sin(2.0 * math.pi * phase), 0.1)
        t_s += rng.expovariate(rate_per_s * factor)
        offsets.append(int(t_s * 1e9))
    return offsets


def build_trace(
    *,
    requests: int,
    vms: int = 4,
    seed: int = 7,
    arrivals: str = "constant",
    rate_per_s: float = 20_000.0,
    mix: Optional[Dict[str, float]] = None,
    final_flush: bool = True,
) -> List[Dict[str, Any]]:
    """Synthesize a seeded request trace.

    The first ``vms`` requests admit ``vm0 .. vm{vms-1}`` (spaced by
    the arrival process like everything else); the rest draw from the
    operation ``mix``.  Order sizes are log-uniform across the order
    clamp window.  The trace ends with a ``flush`` when
    ``final_flush`` so every completion is harvested.
    """
    if vms < 1:
        raise ConfigError(f"vms must be >= 1, got {vms}")
    if requests < vms + (1 if final_flush else 0):
        raise ConfigError(
            f"requests={requests} cannot cover {vms} admissions"
            + (" plus the final flush" if final_flush else "")
        )
    mix = dict(mix or DEFAULT_MIX)
    unknown = sorted(set(mix) - {"order", "price", "bid", "ask", "stats", "flush"})
    if unknown:
        raise ConfigError(f"unknown ops in mix: {unknown}")
    ops = sorted(mix)
    weights = [mix[o] for o in ops]
    offsets = arrival_offsets(arrivals, requests, rate_per_s, seed)
    rng = random.Random(seed + 0x5EED)
    log_lo = math.log(MIN_ORDER_BYTES)
    log_hi = math.log(MAX_ORDER_BYTES)

    trace: List[Dict[str, Any]] = []
    for i in range(requests):
        at_ns = offsets[i]
        if i < vms:
            trace.append(
                {"op": "admit", "params": {"vm": f"vm{i}"}, "at_ns": at_ns}
            )
            continue
        if final_flush and i == requests - 1:
            trace.append({"op": "flush", "params": {}, "at_ns": at_ns})
            continue
        vm = f"vm{rng.randrange(vms)}"
        (op,) = rng.choices(ops, weights=weights)
        if op == "order":
            nbytes = int(math.exp(rng.uniform(log_lo, log_hi)))
            params: Dict[str, Any] = {"vm": vm, "nbytes": nbytes}
        elif op in ("bid", "ask"):
            params = {"vm": vm, "resos": round(rng.uniform(1.0, 64.0), 3)}
        else:  # price / stats / flush
            params = {}
        trace.append({"op": op, "params": params, "at_ns": at_ns})
    return trace


def response_log_lines(responses: Dict[int, Dict[str, Any]]) -> List[str]:
    """Render a response map (request id -> outcome) as canonical JSON
    lines sorted by request id."""
    return [
        canonical_json({"id": rid, **responses[rid]})
        for rid in sorted(responses)
    ]


def response_digest(responses: Dict[int, Dict[str, Any]]) -> str:
    """SHA-256 of the sorted canonical response log."""
    digest = hashlib.sha256()
    for line in response_log_lines(responses):
        digest.update(line.encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


@dataclass
class LoadgenReport:
    """Everything one load-generator run produced."""

    requests: int
    ok: int
    errors: int
    rejected: int
    digest: str
    wall_s: float
    latencies_s: List[float] = field(default_factory=list)

    @property
    def rps(self) -> float:
        return self.requests / self.wall_s if self.wall_s > 0 else 0.0

    def _pct(self, p: float) -> float:
        if not self.latencies_s:
            return 0.0
        lat = sorted(self.latencies_s)
        idx = min(int(p / 100.0 * len(lat)), len(lat) - 1)
        return lat[idx] * 1e6

    def to_dict(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "ok": self.ok,
            "errors": self.errors,
            "rejected": self.rejected,
            "digest": self.digest,
            "wall_s": round(self.wall_s, 6),
            "rps": round(self.rps, 1),
            "p50_latency_us": round(self._pct(50.0), 3),
            "p99_latency_us": round(self._pct(99.0), 3),
        }

    def render(self) -> str:
        d = self.to_dict()
        return (
            f"loadgen: {d['requests']} requests in {d['wall_s']:.3f}s "
            f"({d['rps']:.0f} req/s)\n"
            f"  ok={d['ok']} errors={d['errors']} rejected={d['rejected']}\n"
            f"  latency p50={d['p50_latency_us']:.1f}us "
            f"p99={d['p99_latency_us']:.1f}us\n"
            f"  digest={d['digest']}"
        )


async def run_trace(
    client,
    trace: Iterable[Dict[str, Any]],
    *,
    window: int = 64,
) -> LoadgenReport:
    """Drive a trace through a client with window-limited pipelining.

    At most ``window`` requests are in flight at once; each response
    (or service error) is folded into the response log.  Rejections
    (``service-overloaded``) are counted separately from other errors —
    they are the backpressure working, not a failure.
    """
    responses: Dict[int, Dict[str, Any]] = {}
    latencies: List[float] = []
    ok = errors = rejected = 0
    inflight: List[tuple] = []
    t_start = time.perf_counter()

    async def settle(entry) -> None:
        nonlocal ok, errors, rejected
        rid, op, t_sent, future = entry
        try:
            data = await future
            responses[rid] = {"op": op, "ok": True, "data": data}
            ok += 1
        except ServiceError as exc:
            responses[rid] = {"op": op, "ok": False, "code": exc.code,
                              "error": str(exc)}
            if exc.code == "service-overloaded":
                rejected += 1
            else:
                errors += 1
        latencies.append(time.perf_counter() - t_sent)

    n = 0
    for req in trace:
        n += 1
        future = client.send_nowait(req["op"], req["params"], req.get("at_ns"))
        inflight.append((client._next_id, req["op"], time.perf_counter(), future))
        if len(inflight) >= window:
            await settle(inflight.pop(0))
    while inflight:
        await settle(inflight.pop(0))

    return LoadgenReport(
        requests=n,
        ok=ok,
        errors=errors,
        rejected=rejected,
        digest=response_digest(responses),
        wall_s=time.perf_counter() - t_start,
        latencies_s=latencies,
    )


async def run_loadgen(
    host: str,
    port: int,
    *,
    requests: int = 1000,
    vms: int = 4,
    seed: int = 7,
    arrivals: str = "constant",
    rate_per_s: float = 20_000.0,
    window: int = 64,
    client_name: str = "repro-loadgen",
    connect_retries: int = 25,
) -> LoadgenReport:
    """Connect, synthesize a trace, run it, close.  One connection —
    the deterministic configuration (see docs/architecture.md §15)."""
    from repro.service.client import ServiceClient

    trace = build_trace(
        requests=requests,
        vms=vms,
        seed=seed,
        arrivals=arrivals,
        rate_per_s=rate_per_s,
    )
    client = await ServiceClient.connect(
        host, port, client=client_name, retries=connect_retries
    )
    try:
        return await run_trace(client, trace, window=window)
    finally:
        await client.close()
