"""The served ResEx world: a real DES testbed behind the service API.

Both service backends (:class:`~repro.service.backend.SimBackend` and
:class:`~repro.service.backend.LiveBackend`) mount the same
:class:`ResExWorld`: one server host from the standard
:class:`~repro.experiments.platform.Testbed`, a population of
pre-provisioned guest *slots* under a live
:class:`~repro.resex.ResExController` (running its real management
loop — sensor reads, pricing policy, Reso replenishment — in the
world's virtual time), and a shared fabric link that order flow
contends on under max-min sharing.  The only thing a backend adds is a
*clock policy*: sim mode steps virtual time from request arrival
offsets, live mode slaves it to the wall clock with an asyncio ticker.

Operations map the paper's market onto a request/response surface:

* ``admit`` / ``release`` — VM admission binds a tenant name to a free
  slot (its domain and provisioned :class:`~repro.resex.resos
  .ResoAccount`); capacity exhaustion is an explicit
  :class:`~repro.errors.AdmissionError`, the serving twin of the
  paper's fixed per-host provisioning.
* ``bid`` / ``ask`` — Reso trading against the world's exchange pool
  at the current congestion price (ask sells balance into the pool,
  bid buys it back out, bounded by the account's provisioned
  allocation so the conservation invariant guard stays honest).
* ``price`` — the controller's live local price, the federation's
  cluster price and the order-book congestion factor.
* ``order`` — BenchEx-style order flow: the message is charged I/O
  Resos (``ceil(bytes/MTU) * rate``, through the account's real
  ``deduct`` path) and submitted as a fluid-fabric transfer; an
  exhausted account is throttled (reduced arbitration weight), not
  refused — the paper's cap lever, expressed as bandwidth.
* ``collect`` / ``drain`` — completed orders with their virtual
  latencies; ``drain`` runs the DES until every in-flight order lands
  (sim-mode ``flush``), ``collect`` only harvests what the clock has
  already passed (live-mode ``flush``).

Every response is a pure function of (seed, operation sequence), which
is what makes the sim-mode response-log golden byte-identical.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.errors import AdmissionError, CheckpointError, ConfigError
from repro.experiments.platform import Node, Testbed
from repro.resex import ResExController, policy_by_name
from repro.units import KiB

#: Schema tag on a served-world snapshot document.
WORLD_SCHEMA = "resex-world/1"

#: Order sizes are clamped into this window: one MTU at least (the
#: charging unit) and small enough that one order cannot monopolize
#: the shared link for macroscopic virtual time.
MIN_ORDER_BYTES = 1 * KiB
MAX_ORDER_BYTES = 16 * 1024 * KiB


@dataclass(frozen=True)
class ServiceConfig:
    """Shape of the served world (both backends)."""

    #: Admission capacity: pre-provisioned guest slots on the host.
    slots: int = 8
    #: Pricing policy the live controller runs (see ``repro policies``).
    policy: str = "freemarket"
    #: Arbitration weight of an order whose account could not pay in
    #: full — the service-side throttle lever.
    throttled_weight: float = 0.25
    #: Congestion-price sensitivity to in-flight order backlog.
    congestion_slope: float = 0.05

    def __post_init__(self) -> None:
        if self.slots < 1:
            raise ConfigError(f"slots must be >= 1, got {self.slots}")
        if not 0.0 < self.throttled_weight <= 1.0:
            raise ConfigError(
                f"throttled_weight must be in (0, 1], got {self.throttled_weight}"
            )
        if self.congestion_slope < 0:
            raise ConfigError(
                f"congestion_slope must be >= 0, got {self.congestion_slope}"
            )


def _round6(value: float) -> float:
    return round(float(value), 6)


class ResExWorld:
    """One served market: testbed + controller + slots + order fabric."""

    def __init__(self, config: ServiceConfig = ServiceConfig(), seed: int = 7):
        self.config = config
        self.seed = int(seed)
        self.bed = Testbed(seed=seed)
        self.node: Node = self.bed.add_node("service-host")
        self.env = self.bed.env
        params = self.node.hca.params
        self.mtu_bytes = params.mtu_bytes
        #: The shared wire all order flow crosses (paper: one switch).
        self.link = self.bed.fabric.add_link(
            "service-link", params.link_bytes_per_sec
        )
        self.domains = [
            self.node.create_guest(f"slot{i}") for i in range(config.slots)
        ]
        self.controller = ResExController(
            self.node, policy_by_name(config.policy)()
        )
        for dom in self.domains:
            self.controller.monitor(dom)
        self.controller.start()

        #: tenant name -> slot index; free slots kept sorted so
        #: admission order is deterministic.
        self.bindings: Dict[str, int] = {}
        self._free: List[int] = list(range(config.slots))
        #: The exchange pool Resos move through on ask/bid.
        self.pool_resos = 0.0
        #: In-flight orders: order id -> (vm, transfer, cost, throttled).
        self._pending: Dict[int, Tuple[str, Any, float, bool]] = {}
        self._order_seq = 0
        self.orders_submitted = 0
        self.orders_completed = 0
        self.resos_traded = 0.0

    # -- clock ---------------------------------------------------------------
    @property
    def now_ns(self) -> int:
        return self.env.now

    def advance_to(self, ts_ns: int) -> int:
        """Run the DES forward to ``ts_ns`` (no-op if already there).

        Everything mounted on the environment — the controller's
        management loop, IBMon sampling, in-flight order transfers —
        advances with it.
        """
        ts = int(ts_ns)
        if ts > self.env.now:
            self.env.run(until=ts)
        return self.env.now

    # -- admission -----------------------------------------------------------
    def _slot(self, vm: str) -> int:
        try:
            return self.bindings[vm]
        except KeyError:
            raise AdmissionError(f"VM {vm!r} is not admitted") from None

    def _account(self, slot: int):
        account = self.controller.vms[slot].account
        assert account is not None  # controller started in __init__
        return account

    def admit(self, vm: str) -> Dict[str, Any]:
        """Bind a tenant to the lowest free slot with a fresh account."""
        if not vm:
            raise AdmissionError("VM name must be non-empty")
        if vm in self.bindings:
            raise AdmissionError(f"VM {vm!r} is already admitted")
        if not self._free:
            raise AdmissionError(
                f"no capacity: all {self.config.slots} slots are admitted"
            )
        slot = self._free.pop(0)
        self.bindings[vm] = slot
        account = self._account(slot)
        account.balance = account.allocation  # fresh tenant, fresh budget
        return {
            "vm": vm,
            "slot": slot,
            "domid": self.domains[slot].domid,
            "allocation": _round6(account.allocation),
            "policy": self.controller.policy.name,
        }

    def release(self, vm: str) -> Dict[str, Any]:
        """Unbind a tenant; its slot returns to the free pool.

        In-flight orders keep draining (the bytes are already on the
        wire) and still surface in ``collect`` under the old name.
        """
        slot = self._slot(vm)
        del self.bindings[vm]
        self._free.append(slot)
        self._free.sort()
        return {"vm": vm, "slot": slot, "free_slots": len(self._free)}

    # -- pricing & trading ---------------------------------------------------
    def congestion(self) -> float:
        """Order-book congestion factor: grows with in-flight backlog."""
        return 1.0 + self.config.congestion_slope * len(self._pending)

    def price(self) -> Dict[str, Any]:
        local = self.controller.local_price()
        congestion = self.congestion()
        return {
            "local": _round6(local),
            "cluster": _round6(self.controller.cluster_price),
            "congestion": _round6(congestion),
            "effective": _round6(local * congestion),
            "in_flight": len(self._pending),
            "pool_resos": _round6(self.pool_resos),
        }

    def ask(self, vm: str, resos: float) -> Dict[str, Any]:
        """Sell Resos from the VM's balance into the exchange pool."""
        if resos <= 0:
            raise AdmissionError(f"ask amount must be positive, got {resos}")
        account = self._account(self._slot(vm))
        amount = min(float(resos), account.balance)
        account.deduct(amount)
        self.pool_resos += amount
        self.resos_traded += amount
        price = self.controller.local_price() * self.congestion()
        return {
            "vm": vm,
            "filled": _round6(amount),
            "price": _round6(price),
            "proceeds": _round6(amount * price),
            "balance": _round6(account.balance),
            "pool_resos": _round6(self.pool_resos),
        }

    def bid(self, vm: str, resos: float) -> Dict[str, Any]:
        """Buy Resos out of the exchange pool, up to the provisioned
        allocation (the conservation guard's envelope)."""
        if resos <= 0:
            raise AdmissionError(f"bid amount must be positive, got {resos}")
        account = self._account(self._slot(vm))
        headroom = max(account.allocation - account.balance, 0.0)
        amount = min(float(resos), self.pool_resos, headroom)
        self.pool_resos -= amount
        account.balance += amount
        self.resos_traded += amount
        price = self.controller.local_price() * self.congestion()
        return {
            "vm": vm,
            "filled": _round6(amount),
            "price": _round6(price),
            "cost": _round6(amount * price),
            "balance": _round6(account.balance),
            "pool_resos": _round6(self.pool_resos),
        }

    # -- order flow ----------------------------------------------------------
    def order(self, vm: str, nbytes: int) -> Dict[str, Any]:
        """Charge and launch one BenchEx-style message transfer."""
        slot = self._slot(vm)
        nbytes = int(nbytes)
        if nbytes <= 0:
            raise AdmissionError(f"order bytes must be positive, got {nbytes}")
        nbytes = max(MIN_ORDER_BYTES, min(nbytes, MAX_ORDER_BYTES))
        mvm = self.controller.vms[slot]
        account = self._account(slot)
        mtus = math.ceil(nbytes / self.mtu_bytes)
        cost = (
            mtus
            * self.controller.reso_params.io_resos_per_mtu
            * mvm.charge_rate
        )
        affordable = account.balance + 1e-9 >= cost
        account.deduct(cost)
        weight = 1.0 if affordable else self.config.throttled_weight
        self._order_seq += 1
        oid = self._order_seq
        transfer = self.bed.fabric.submit(
            [self.link], nbytes, flow_label=f"order/{vm}/{oid}", weight=weight
        )
        self._pending[oid] = (vm, transfer, cost, not affordable)
        self.orders_submitted += 1
        return {
            "order_id": oid,
            "vm": vm,
            "nbytes": nbytes,
            "cost_resos": _round6(cost),
            "throttled": not affordable,
            "balance": _round6(account.balance),
            "in_flight": len(self._pending),
        }

    def collect(self) -> List[Dict[str, Any]]:
        """Harvest orders the virtual clock has already completed."""
        done: List[Dict[str, Any]] = []
        for oid in sorted(self._pending):
            vm, transfer, cost, throttled = self._pending[oid]
            if transfer.completed_at is None:
                continue
            done.append(
                {
                    "order_id": oid,
                    "vm": vm,
                    "nbytes": transfer.nbytes,
                    "latency_us": _round6(
                        (transfer.completed_at - transfer.submitted_at) / 1_000
                    ),
                    "throttled": throttled,
                }
            )
            del self._pending[oid]
        self.orders_completed += len(done)
        return done

    def drain(self) -> List[Dict[str, Any]]:
        """Run the DES until every in-flight order completes."""
        for oid in sorted(self._pending):
            _vm, transfer, _cost, _throttled = self._pending[oid]
            if transfer.completed_at is None:
                self.env.run(until=transfer.done)
        return self.collect()

    # -- checkpoint ----------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A JSON-safe summary of the served market's durable state.

        Captures what a restarted server must honor — tenant bindings,
        account balances, the exchange pool, order counters and the
        virtual clock.  In-flight orders are *not* captured (their
        DES transfers cannot outlive the process); their count is
        recorded as ``in_flight_lost`` so the operator sees exactly
        what a restart dropped.
        """
        return {
            "schema": WORLD_SCHEMA,
            "seed": self.seed,
            "config": {
                "slots": self.config.slots,
                "policy": self.config.policy,
                "throttled_weight": self.config.throttled_weight,
                "congestion_slope": self.config.congestion_slope,
            },
            "now_ns": int(self.env.now),
            "bindings": {vm: slot for vm, slot in sorted(self.bindings.items())},
            "balances": {
                str(slot): _round6(self._account(slot).balance)
                for slot in range(self.config.slots)
            },
            "pool_resos": _round6(self.pool_resos),
            "order_seq": self._order_seq,
            "orders_submitted": self.orders_submitted,
            "orders_completed": self.orders_completed,
            "resos_traded": _round6(self.resos_traded),
            "in_flight_lost": len(self._pending),
        }

    @classmethod
    def restore(cls, snap: Dict[str, Any]) -> "ResExWorld":
        """Rebuild a served world from :meth:`snapshot` output.

        The world is reconstructed from its (seed, config) — the same
        deterministic build path as ``__init__`` — then advanced to
        the snapshot's virtual time and patched with the durable
        market state.  Raises :class:`~repro.errors.CheckpointError`
        on a schema mismatch or a snapshot that does not fit its own
        declared config.
        """
        if not isinstance(snap, dict) or snap.get("schema") != WORLD_SCHEMA:
            got = snap.get("schema") if isinstance(snap, dict) else type(snap).__name__
            raise CheckpointError(
                f"world snapshot schema mismatch: expected {WORLD_SCHEMA!r}, "
                f"got {got!r}"
            )
        try:
            config = ServiceConfig(**snap["config"])
            world = cls(config, seed=int(snap["seed"]))
            world.advance_to(int(snap["now_ns"]))
            bindings = {
                str(vm): int(slot) for vm, slot in snap["bindings"].items()
            }
            if any(not 0 <= s < config.slots for s in bindings.values()):
                raise CheckpointError(
                    f"snapshot binds a slot outside 0..{config.slots - 1}"
                )
            world.bindings = bindings
            world._free = sorted(
                set(range(config.slots)) - set(bindings.values())
            )
            for slot, balance in snap["balances"].items():
                world._account(int(slot)).balance = float(balance)
            world.pool_resos = float(snap["pool_resos"])
            world._order_seq = int(snap["order_seq"])
            world.orders_submitted = int(snap["orders_submitted"])
            world.orders_completed = int(snap["orders_completed"])
            world.resos_traded = float(snap["resos_traded"])
        except CheckpointError:
            raise
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise CheckpointError(
                f"world snapshot is malformed: {type(exc).__name__}: {exc}"
            ) from None
        return world

    # -- introspection -------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        return {
            "slots": self.config.slots,
            "admitted": len(self.bindings),
            "policy": self.controller.policy.name,
            "orders_submitted": self.orders_submitted,
            "orders_completed": self.orders_completed,
            "in_flight": len(self._pending),
            "pool_resos": _round6(self.pool_resos),
            "resos_traded": _round6(self.resos_traded),
            "now_ns": self.env.now,
            "events": self.env.events_processed,
            "intervals_run": self.controller.intervals_run,
            "epochs_run": self.controller.epochs_run,
        }

    def __repr__(self) -> str:
        return (
            f"<ResExWorld slots={self.config.slots} admitted="
            f"{len(self.bindings)} t={self.env.now}ns>"
        )


# -- snapshot files ----------------------------------------------------------

#: Schema tag on the on-disk wrapper around a world snapshot.
WORLD_FILE_SCHEMA = "resex-world-file/1"


def _snapshot_digest(snap: Dict[str, Any]) -> str:
    blob = json.dumps(snap, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def save_world_snapshot(path: str, snap: Dict[str, Any]) -> str:
    """Atomically persist a world snapshot, digest-stamped.

    Written to a temp file, fsynced and ``os.replace``d so a crash
    mid-write can never leave a half snapshot under the final name.
    Returns the snapshot's content digest.
    """
    digest = _snapshot_digest(snap)
    doc = {"schema": WORLD_FILE_SCHEMA, "digest": digest, "snapshot": snap}
    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, sort_keys=True, indent=2)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return digest


def load_world_snapshot(path: str) -> Dict[str, Any]:
    """Read and verify a snapshot file; returns the snapshot payload.

    Raises :class:`~repro.errors.CheckpointError` on an unreadable,
    truncated, mis-schemed or digest-mismatched file — the caller
    decides whether that is fatal (a ``--restore`` always is).
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise CheckpointError(f"cannot read world snapshot {path}: {exc}") from None
    except ValueError as exc:
        raise CheckpointError(
            f"world snapshot {path} is not valid JSON: {exc}"
        ) from None
    if not isinstance(doc, dict) or doc.get("schema") != WORLD_FILE_SCHEMA:
        got = doc.get("schema") if isinstance(doc, dict) else type(doc).__name__
        raise CheckpointError(
            f"world snapshot {path} schema mismatch: expected "
            f"{WORLD_FILE_SCHEMA!r}, got {got!r}"
        )
    snap = doc.get("snapshot")
    if not isinstance(snap, dict):
        raise CheckpointError(
            f"world snapshot {path} payload is "
            f"{type(snap).__name__}, not a mapping"
        )
    digest = _snapshot_digest(snap)
    if digest != doc.get("digest"):
        raise CheckpointError(
            f"world snapshot {path} digest mismatch: stamped "
            f"{str(doc.get('digest'))[:12]}..., computed {digest[:12]}... "
            "(torn write or corruption)"
        )
    return snap
