"""The orchestrator: validated, serialized routing into a backend.

One :class:`Orchestrator` sits between any number of request sources
(gateway sessions, the in-process replay harness, the load generator's
direct mode) and exactly one backend.  It owns three responsibilities:

1. **Validation** — every operation's parameter shape is checked
   against :data:`OP_SCHEMAS` before the backend sees it, so backends
   never defend against missing keys or mistyped values; breaches are
   :class:`~repro.errors.ProtocolError` (stable wire code).
2. **Serialization** — a single asyncio lock admits one request at a
   time to the world.  The shared DES world is mutable state; global
   FIFO admission is what makes sim-mode responses a pure function of
   the request sequence rather than of client interleaving.
3. **Accounting** — a global sequence number stamped into every
   response (proof of serialization order), per-operation counters,
   and — when a telemetry bus is attached — one ``service``-category
   record per routed request, stamped with wall-clock nanoseconds
   since orchestrator start (the service runs in real time even over a
   virtual-clock backend).
4. **Idempotent replay** — requests carrying an ``ikey`` are deduped
   against a bounded window of recently answered keys.  A duplicate
   (a client re-send after a reconnect) is answered from the cache
   with the *original* response — same data, same ``seq`` — without
   touching the backend, so a mutating operation whose response was
   lost on the wire executes at most once.  Only successes are
   cached: a failed request may legitimately succeed on retry.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from typing import Any, Dict, Optional

#: Default size of the idempotency-key dedup window (answered keys
#: remembered per orchestrator; oldest evicted first).
DEFAULT_DEDUP_WINDOW = 1024

from repro.errors import ProtocolError, ServiceBackendError, ServiceError
from repro.service.backend import ResExBackend
from repro.telemetry.bus import SERVICE

#: op -> {param name: (required, type check)}.
OP_SCHEMAS: Dict[str, Dict[str, tuple]] = {
    "admit": {"vm": (True, str)},
    "release": {"vm": (True, str)},
    "bid": {"vm": (True, str), "resos": (True, (int, float))},
    "ask": {"vm": (True, str), "resos": (True, (int, float))},
    "price": {},
    "order": {"vm": (True, str), "nbytes": (True, int)},
    "flush": {},
    "stats": {},
}


def validate_params(op: str, params: Dict[str, Any]) -> Dict[str, Any]:
    """Check one operation's parameters against :data:`OP_SCHEMAS`."""
    schema = OP_SCHEMAS.get(op)
    if schema is None:
        raise ProtocolError(
            f"unknown operation {op!r} (have {', '.join(sorted(OP_SCHEMAS))})"
        )
    for key, (required, types) in schema.items():
        if key not in params:
            if required:
                raise ProtocolError(f"operation {op!r} requires param {key!r}")
            continue
        value = params[key]
        if isinstance(value, bool) or not isinstance(value, types):
            raise ProtocolError(
                f"param {key!r} of {op!r} must be "
                f"{getattr(types, '__name__', 'number')}, got {value!r}"
            )
    unknown = sorted(set(params) - set(schema))
    if unknown:
        raise ProtocolError(f"operation {op!r} got unknown params {unknown}")
    return params


class Orchestrator:
    """Routes operations into one backend, one at a time."""

    def __init__(
        self,
        backend: ResExBackend,
        telemetry=None,
        dedup_window: int = DEFAULT_DEDUP_WINDOW,
    ) -> None:
        self.backend = backend
        self.telemetry = telemetry
        self._lock = asyncio.Lock()
        self.seq = 0
        self.op_counts: Dict[str, int] = {}
        self.error_counts: Dict[str, int] = {}
        #: ikey -> cached successful response (seq already stamped).
        self._dedup: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self.dedup_window = int(dedup_window)
        self.deduped = 0
        self._t0 = time.perf_counter()

    @property
    def mode(self) -> str:
        return self.backend.mode

    async def start(self) -> None:
        await self.backend.start()

    async def stop(self) -> None:
        await self.backend.stop()

    def _wall_ns(self) -> int:
        return int((time.perf_counter() - self._t0) * 1e9)

    async def handle(
        self,
        op: str,
        params: Optional[Dict[str, Any]] = None,
        at_ns: int = 0,
        session: int = 0,
        ikey: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Validate, serialize and execute one operation.

        Raises a :class:`~repro.errors.ServiceError` subclass on any
        failure; unexpected backend exceptions are wrapped in
        :class:`~repro.errors.ServiceBackendError` so one bad request
        can never take the service down.  A duplicate ``ikey`` inside
        the dedup window replays the cached response without executing.
        """
        params = validate_params(op, dict(params or {}))
        async with self._lock:
            if ikey is not None:
                cached = self._dedup.get(ikey)
                if cached is not None:
                    self.deduped += 1
                    return dict(cached)
            self.seq += 1
            seq = self.seq
            try:
                data = await self.backend.handle(op, params, at_ns)
            except ServiceError:
                self.error_counts[op] = self.error_counts.get(op, 0) + 1
                raise
            except Exception as exc:
                self.error_counts[op] = self.error_counts.get(op, 0) + 1
                raise ServiceBackendError(
                    f"backend failed on {op!r}: {type(exc).__name__}: {exc}"
                ) from exc
            self.op_counts[op] = self.op_counts.get(op, 0) + 1
            data = dict(data)
            data["seq"] = seq
            if ikey is not None:
                self._dedup[ikey] = dict(data)
                while len(self._dedup) > self.dedup_window:
                    self._dedup.popitem(last=False)
        tel = self.telemetry
        if tel is not None and tel.enabled:
            tel.event(
                SERVICE,
                op,
                self._wall_ns(),
                lane=f"session-{session}",
                seq=seq,
                mode=self.backend.mode,
            )
        return data

    async def handle_request(self, frame: Dict[str, Any], session: int = 0) -> Dict[str, Any]:
        """Convenience: route one validated ``req`` frame dict."""
        return await self.handle(
            frame["op"],
            frame.get("params") or {},
            at_ns=int(frame.get("at_ns", 0)),
            session=session,
            ikey=frame.get("ikey"),
        )

    def stats(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "mode": self.backend.mode,
            "op_counts": dict(sorted(self.op_counts.items())),
            "error_counts": dict(sorted(self.error_counts.items())),
            "deduped": self.deduped,
        }
