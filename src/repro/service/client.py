"""Client library for the ResEx service wire protocol.

:class:`ServiceClient` speaks ``resex-service/1`` over an asyncio
stream: it performs the hello/welcome handshake, then lets callers
pipeline requests — each call to :meth:`ServiceClient.request` gets a
fresh request id and a future; a single background reader task matches
``res``/``err`` frames back to their futures by id, so any number of
requests can be in flight on one connection.  Error frames are
re-raised as the exact :mod:`repro.errors` service exception the
gateway caught (``service-overloaded`` → :class:`~repro.errors
.Overloaded`, and so on), so a caller's ``except`` clauses work the
same in-process and over the wire.

Convenience wrappers (:meth:`admit`, :meth:`order`, :meth:`flush`, ...)
cover the full operation surface; the load generator drives the raw
:meth:`request` path.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional

from repro.errors import ProtocolError, ServiceError, service_error_from_code
from repro.service import protocol


class ServiceClient:
    """One pipelined connection to a ResEx service gateway."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        welcome: Dict[str, Any],
        max_frame: int = protocol.DEFAULT_MAX_FRAME,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._max_frame = max_frame
        self.session = int(welcome["session"])
        #: Backend mode the server reported at handshake: sim or live.
        self.mode = str(welcome["mode"])
        self._next_id = 0
        self._inflight: Dict[int, asyncio.Future] = {}
        self._closed = False
        self._reader_task = asyncio.create_task(
            self._read_loop(), name=f"service-client-{self.session}"
        )

    # -- lifecycle -----------------------------------------------------------
    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        client: str = "repro-client",
        max_frame: int = protocol.DEFAULT_MAX_FRAME,
        timeout_s: float = 5.0,
        retries: int = 0,
        retry_delay_s: float = 0.2,
    ) -> "ServiceClient":
        """Dial, handshake and return a ready client.

        ``retries`` covers the race of dialing a server that is still
        binding its socket (the CI smoke test's startup path).
        """
        last: Optional[Exception] = None
        for attempt in range(int(retries) + 1):
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(host, port), timeout_s
                )
                break
            except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
                last = exc
                if attempt < retries:
                    await asyncio.sleep(retry_delay_s)
        else:
            raise ProtocolError(
                f"could not connect to {host}:{port}: {last}"
            ) from last
        writer.write(
            protocol.encode_frame(protocol.hello_frame(client), max_frame)
        )
        await writer.drain()
        welcome = await asyncio.wait_for(
            protocol.read_frame(reader, max_frame), timeout_s
        )
        if welcome is None:
            raise ProtocolError("server closed the connection during handshake")
        protocol.check_welcome(welcome)
        return cls(reader, writer, welcome, max_frame)

    async def close(self) -> None:
        """Close the connection; in-flight requests fail with
        :class:`~repro.errors.ProtocolError`."""
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._fail_inflight(ProtocolError("client closed"))
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "ServiceClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- plumbing ------------------------------------------------------------
    def _fail_inflight(self, exc: Exception) -> None:
        for future in self._inflight.values():
            if not future.done():
                future.set_exception(exc)
        self._inflight.clear()

    async def _read_loop(self) -> None:
        try:
            while True:
                frame = await protocol.read_frame(self._reader, self._max_frame)
                if frame is None:
                    self._fail_inflight(
                        ProtocolError("server closed the connection")
                    )
                    return
                self._dispatch(frame)
        except asyncio.CancelledError:
            raise
        except (ServiceError, ConnectionError, OSError) as exc:
            self._fail_inflight(
                exc
                if isinstance(exc, ServiceError)
                else ProtocolError(f"connection lost: {exc}")
            )

    def _dispatch(self, frame: Dict[str, Any]) -> None:
        req_id = frame.get("id")
        if frame.get("type") == "err":
            exc = service_error_from_code(
                str(frame.get("code", "service")), str(frame.get("error", ""))
            )
            if req_id is None:
                # Connection-scoped error (bad framing on our side):
                # every in-flight request is dead.
                self._fail_inflight(exc)
                return
            future = self._inflight.pop(req_id, None)
            if future is not None and not future.done():
                future.set_exception(exc)
            return
        future = self._inflight.pop(req_id, None) if req_id is not None else None
        if future is not None and not future.done():
            future.set_result(frame.get("data", {}))

    # -- requests ------------------------------------------------------------
    async def request(
        self,
        op: str,
        params: Optional[Dict[str, Any]] = None,
        at_ns: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Send one operation and await its response data.

        Raises the mapped :class:`~repro.errors.ServiceError` subclass
        if the gateway answers with an ``err`` frame.
        """
        if self._closed:
            raise ProtocolError("client is closed")
        self._next_id += 1
        req_id = self._next_id
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[req_id] = future
        frame = protocol.request_frame(req_id, op, params, at_ns)
        try:
            self._writer.write(protocol.encode_frame(frame, self._max_frame))
            await self._writer.drain()
        except (ConnectionError, OSError) as exc:
            self._inflight.pop(req_id, None)
            raise ProtocolError(f"connection lost: {exc}") from exc
        return await future

    def send_nowait(
        self,
        op: str,
        params: Optional[Dict[str, Any]] = None,
        at_ns: Optional[int] = None,
    ) -> "asyncio.Future":
        """Fire one request without awaiting; returns its future.

        The open-loop load generator uses this to keep a window of
        requests in flight on one connection.
        """
        if self._closed:
            raise ProtocolError("client is closed")
        self._next_id += 1
        req_id = self._next_id
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[req_id] = future
        frame = protocol.request_frame(req_id, op, params, at_ns)
        self._writer.write(protocol.encode_frame(frame, self._max_frame))
        return future

    # -- operation surface ---------------------------------------------------
    async def admit(self, vm: str, at_ns: Optional[int] = None) -> Dict[str, Any]:
        return await self.request("admit", {"vm": vm}, at_ns)

    async def release(self, vm: str, at_ns: Optional[int] = None) -> Dict[str, Any]:
        return await self.request("release", {"vm": vm}, at_ns)

    async def bid(
        self, vm: str, resos: float, at_ns: Optional[int] = None
    ) -> Dict[str, Any]:
        return await self.request("bid", {"vm": vm, "resos": resos}, at_ns)

    async def ask(
        self, vm: str, resos: float, at_ns: Optional[int] = None
    ) -> Dict[str, Any]:
        return await self.request("ask", {"vm": vm, "resos": resos}, at_ns)

    async def price(self, at_ns: Optional[int] = None) -> Dict[str, Any]:
        return await self.request("price", {}, at_ns)

    async def order(
        self, vm: str, nbytes: int, at_ns: Optional[int] = None
    ) -> Dict[str, Any]:
        return await self.request("order", {"vm": vm, "nbytes": nbytes}, at_ns)

    async def flush(self, at_ns: Optional[int] = None) -> Dict[str, Any]:
        return await self.request("flush", {}, at_ns)

    async def stats(self, at_ns: Optional[int] = None) -> Dict[str, Any]:
        return await self.request("stats", {}, at_ns)
