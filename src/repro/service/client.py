"""Client library for the ResEx service wire protocol.

:class:`ServiceClient` speaks ``resex-service/1`` over an asyncio
stream: it performs the hello/welcome handshake, then lets callers
pipeline requests — each call to :meth:`ServiceClient.request` gets a
fresh request id and a future; a single background reader task matches
``res``/``err`` frames back to their futures by id, so any number of
requests can be in flight on one connection.  Error frames are
re-raised as the exact :mod:`repro.errors` service exception the
gateway caught (``service-overloaded`` → :class:`~repro.errors
.Overloaded`, and so on), so a caller's ``except`` clauses work the
same in-process and over the wire.

Convenience wrappers (:meth:`admit`, :meth:`order`, :meth:`flush`, ...)
cover the full operation surface; the load generator drives the raw
:meth:`request` path.

Connecting with a ``token`` opts a client into *at-most-once re-send*:
every request frame carries an idempotency key (``token:req_id``), the
gateway keeps a bounded dedup window keyed on it, and on connection
loss the client's unanswered in-flight futures stay pending instead of
failing — :meth:`ServiceClient.reconnect` re-dials, re-handshakes and
re-sends those exact frames.  A request the server already executed is
answered from the dedup cache (same data, same serialization ``seq``),
so a crash between execute and respond cannot double-execute a
mutating operation.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional, Tuple

from repro.errors import (
    ProtocolError,
    ServiceError,
    ServiceUnavailable,
    service_error_from_code,
)
from repro.service import protocol


class ServiceClient:
    """One pipelined connection to a ResEx service gateway."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        welcome: Dict[str, Any],
        max_frame: int = protocol.DEFAULT_MAX_FRAME,
        *,
        host: str = "",
        port: int = 0,
        client: str = "repro-client",
        timeout_s: float = 5.0,
        token: Optional[str] = None,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._max_frame = max_frame
        self._host = host
        self._port = port
        self._client_name = client
        self._timeout_s = timeout_s
        #: Idempotency token; when set every request carries an
        #: ``ikey`` and unanswered requests survive a reconnect.
        self.token = token
        self.session = int(welcome["session"])
        #: Backend mode the server reported at handshake: sim or live.
        self.mode = str(welcome["mode"])
        self._next_id = 0
        #: req id -> (future, the exact frame sent) — the frame is kept
        #: so :meth:`reconnect` can re-send it byte-identically.
        self._inflight: Dict[int, Tuple[asyncio.Future, Dict[str, Any]]] = {}
        self._closed = False
        self._reader_task = asyncio.create_task(
            self._read_loop(), name=f"service-client-{self.session}"
        )

    # -- lifecycle -----------------------------------------------------------
    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        client: str = "repro-client",
        max_frame: int = protocol.DEFAULT_MAX_FRAME,
        timeout_s: float = 5.0,
        retries: int = 0,
        retry_delay_s: float = 0.2,
        token: Optional[str] = None,
    ) -> "ServiceClient":
        """Dial, handshake and return a ready client.

        ``retries`` covers the race of dialing a server that is still
        binding its socket (the CI smoke test's startup path).  A
        server that never answers raises
        :class:`~repro.errors.ServiceUnavailable` (stable
        ``service-unavailable`` code) once the budget is spent.
        ``token`` opts into idempotent re-send (see module docstring).
        """
        reader, writer = await cls._dial(
            host, port, timeout_s=timeout_s, retries=retries,
            retry_delay_s=retry_delay_s,
        )
        welcome = await cls._handshake(
            reader, writer, client=client, max_frame=max_frame,
            timeout_s=timeout_s,
        )
        return cls(
            reader, writer, welcome, max_frame,
            host=host, port=port, client=client, timeout_s=timeout_s,
            token=token,
        )

    @staticmethod
    async def _dial(
        host: str,
        port: int,
        *,
        timeout_s: float,
        retries: int = 0,
        retry_delay_s: float = 0.2,
    ) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        last: Optional[Exception] = None
        for attempt in range(int(retries) + 1):
            try:
                return await asyncio.wait_for(
                    asyncio.open_connection(host, port), timeout_s
                )
            except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
                last = exc
                if attempt < retries:
                    await asyncio.sleep(retry_delay_s)
        raise ServiceUnavailable(
            f"could not connect to {host}:{port} "
            f"after {int(retries) + 1} attempt(s): {last}"
        ) from last

    @staticmethod
    async def _handshake(
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        client: str,
        max_frame: int,
        timeout_s: float,
    ) -> Dict[str, Any]:
        writer.write(
            protocol.encode_frame(protocol.hello_frame(client), max_frame)
        )
        await writer.drain()
        welcome = await asyncio.wait_for(
            protocol.read_frame(reader, max_frame), timeout_s
        )
        if welcome is None:
            raise ProtocolError("server closed the connection during handshake")
        protocol.check_welcome(welcome)
        return welcome

    async def reconnect(self, *, retries: int = 3, retry_delay_s: float = 0.2) -> None:
        """Re-dial, re-handshake and re-send unanswered requests.

        Only meaningful for a client connected with a ``token``: each
        unresolved in-flight frame is re-sent exactly as first written
        (same id, same ikey), so the gateway either executes it for the
        first time or replays its cached response — at-most-once either
        way.  Raises :class:`~repro.errors.ServiceUnavailable` when the
        server still is not answering.
        """
        if self._closed:
            raise ProtocolError("client is closed")
        if self.token is None:
            raise ProtocolError(
                "reconnect() requires a client token (idempotency keys); "
                "without one a re-send could double-execute"
            )
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        reader, writer = await self._dial(
            self._host, self._port, timeout_s=self._timeout_s,
            retries=retries, retry_delay_s=retry_delay_s,
        )
        welcome = await self._handshake(
            reader, writer, client=self._client_name,
            max_frame=self._max_frame, timeout_s=self._timeout_s,
        )
        self._reader = reader
        self._writer = writer
        self.session = int(welcome["session"])
        self.mode = str(welcome["mode"])
        self._reader_task = asyncio.create_task(
            self._read_loop(), name=f"service-client-{self.session}"
        )
        for req_id in sorted(self._inflight):
            future, frame = self._inflight[req_id]
            if future.done():
                continue
            self._writer.write(
                protocol.encode_frame(frame, self._max_frame)
            )
        await self._writer.drain()

    async def close(self) -> None:
        """Close the connection; in-flight requests fail with
        :class:`~repro.errors.ProtocolError`."""
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._fail_inflight(ProtocolError("client closed"))
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "ServiceClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- plumbing ------------------------------------------------------------
    def _fail_inflight(self, exc: Exception) -> None:
        for future, _frame in self._inflight.values():
            if not future.done():
                future.set_exception(exc)
        self._inflight.clear()

    def _connection_lost(self, exc: Exception) -> None:
        """The transport died mid-conversation.

        A tokenized client leaves its in-flight futures *pending* —
        the caller reconnects and the re-sent frames (carrying their
        original idempotency keys) resolve them.  Without a token a
        re-send could double-execute, so everything fails fast.
        """
        if self.token is None or self._closed:
            self._fail_inflight(exc)

    async def _read_loop(self) -> None:
        try:
            while True:
                frame = await protocol.read_frame(self._reader, self._max_frame)
                if frame is None:
                    self._connection_lost(
                        ProtocolError("server closed the connection")
                    )
                    return
                self._dispatch(frame)
        except asyncio.CancelledError:
            raise
        except ServiceError as exc:
            self._fail_inflight(exc)
        except (ConnectionError, OSError) as exc:
            self._connection_lost(ProtocolError(f"connection lost: {exc}"))

    def _dispatch(self, frame: Dict[str, Any]) -> None:
        req_id = frame.get("id")
        if frame.get("type") == "err":
            exc = service_error_from_code(
                str(frame.get("code", "service")), str(frame.get("error", ""))
            )
            if req_id is None:
                # Connection-scoped error (bad framing on our side):
                # every in-flight request is dead.
                self._fail_inflight(exc)
                return
            entry = self._inflight.pop(req_id, None)
            if entry is not None and not entry[0].done():
                entry[0].set_exception(exc)
            return
        entry = self._inflight.pop(req_id, None) if req_id is not None else None
        if entry is not None and not entry[0].done():
            entry[0].set_result(frame.get("data", {}))

    # -- requests ------------------------------------------------------------
    async def request(
        self,
        op: str,
        params: Optional[Dict[str, Any]] = None,
        at_ns: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Send one operation and await its response data.

        Raises the mapped :class:`~repro.errors.ServiceError` subclass
        if the gateway answers with an ``err`` frame.
        """
        if self._closed:
            raise ProtocolError("client is closed")
        req_id, future, frame = self._register(op, params, at_ns)
        try:
            self._writer.write(protocol.encode_frame(frame, self._max_frame))
            await self._writer.drain()
        except (ConnectionError, OSError) as exc:
            if self.token is None:
                self._inflight.pop(req_id, None)
                raise ProtocolError(f"connection lost: {exc}") from exc
            # Tokenized: the frame stays registered; reconnect()
            # re-sends it and this very future resolves.
        return await future

    def send_nowait(
        self,
        op: str,
        params: Optional[Dict[str, Any]] = None,
        at_ns: Optional[int] = None,
    ) -> "asyncio.Future":
        """Fire one request without awaiting; returns its future.

        The open-loop load generator uses this to keep a window of
        requests in flight on one connection.
        """
        if self._closed:
            raise ProtocolError("client is closed")
        _req_id, future, frame = self._register(op, params, at_ns)
        self._writer.write(protocol.encode_frame(frame, self._max_frame))
        return future

    def _register(
        self,
        op: str,
        params: Optional[Dict[str, Any]],
        at_ns: Optional[int],
    ) -> Tuple[int, "asyncio.Future", Dict[str, Any]]:
        """Allocate an id, build the frame (with its idempotency key
        when a token is set) and park the future in the in-flight map."""
        self._next_id += 1
        req_id = self._next_id
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        ikey = f"{self.token}:{req_id}" if self.token is not None else None
        frame = protocol.request_frame(req_id, op, params, at_ns, ikey=ikey)
        self._inflight[req_id] = (future, frame)
        return req_id, future, frame

    # -- operation surface ---------------------------------------------------
    async def admit(self, vm: str, at_ns: Optional[int] = None) -> Dict[str, Any]:
        return await self.request("admit", {"vm": vm}, at_ns)

    async def release(self, vm: str, at_ns: Optional[int] = None) -> Dict[str, Any]:
        return await self.request("release", {"vm": vm}, at_ns)

    async def bid(
        self, vm: str, resos: float, at_ns: Optional[int] = None
    ) -> Dict[str, Any]:
        return await self.request("bid", {"vm": vm, "resos": resos}, at_ns)

    async def ask(
        self, vm: str, resos: float, at_ns: Optional[int] = None
    ) -> Dict[str, Any]:
        return await self.request("ask", {"vm": vm, "resos": resos}, at_ns)

    async def price(self, at_ns: Optional[int] = None) -> Dict[str, Any]:
        return await self.request("price", {}, at_ns)

    async def order(
        self, vm: str, nbytes: int, at_ns: Optional[int] = None
    ) -> Dict[str, Any]:
        return await self.request("order", {"vm": vm, "nbytes": nbytes}, at_ns)

    async def flush(self, at_ns: Optional[int] = None) -> Dict[str, Any]:
        return await self.request("flush", {}, at_ns)

    async def stats(self, at_ns: Optional[int] = None) -> Dict[str, Any]:
        return await self.request("stats", {}, at_ns)
