"""Swappable service backends: one world, two clock policies.

The orchestrator routes every request through a :class:`ResExBackend`.
Both implementations mount the *same* :class:`~repro.service.world.
ResExWorld` (real DES testbed, live ResEx controller, fluid-fabric
order flow) and expose the same operations, so the orchestrator,
gateway, client and load generator are tested bit-for-bit against the
code that would serve production traffic — the live/sim duality of
LiveStack and of Stier et al.'s cloud-middleware simulation (PAPERS.md):

* :class:`SimBackend` steps the world's virtual clock from request
  arrival offsets (``at_ns``).  A fixed seed and a fixed request trace
  therefore yield byte-identical responses — million-request scale,
  deterministic, no hardware.  ``flush`` *drains*: the DES runs until
  every in-flight order completes, so the response carries the full
  completion log.
* :class:`LiveBackend` slaves the world's clock to the wall clock: an
  asyncio ticker advances the DES to ``elapsed wall ns`` every tick,
  so controller epochs (Reso replenishment, pricing intervals) pass in
  real time between requests.  ``flush`` only *collects* what real
  time has already completed; orders still in flight stay pending.

Backends are deliberately not thread-safe: the orchestrator serializes
access (one request at a time touches the world), which is also what
makes sim-mode responses independent of client interleaving.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional

from repro.errors import ProtocolError
from repro.service.world import ResExWorld, ServiceConfig

#: Operations every backend understands (the orchestrator validates
#: parameter shapes before dispatch).
OPERATIONS = (
    "admit",
    "release",
    "bid",
    "ask",
    "price",
    "order",
    "flush",
    "stats",
)


class ResExBackend:
    """Shared operation dispatch over a mounted :class:`ResExWorld`."""

    #: ``"sim"`` or ``"live"`` — reported in the handshake welcome.
    mode = "abstract"

    def __init__(
        self,
        config: ServiceConfig = ServiceConfig(),
        seed: int = 7,
        world: Optional[ResExWorld] = None,
    ) -> None:
        self.world = world if world is not None else ResExWorld(config, seed)
        self.requests_handled = 0

    # -- lifecycle (overridden by live mode) --------------------------------
    async def start(self) -> None:
        """Bring the backend up (live mode starts its ticker here)."""

    async def stop(self) -> None:
        """Tear the backend down."""

    # -- clock policy --------------------------------------------------------
    def _on_request(self, at_ns: int) -> None:
        """Advance the world's clock for a request arriving at
        ``at_ns`` (meaning depends on the mode)."""
        raise NotImplementedError

    def _flush(self) -> Dict[str, Any]:
        raise NotImplementedError

    # -- dispatch ------------------------------------------------------------
    async def handle(
        self, op: str, params: Dict[str, Any], at_ns: int = 0
    ) -> Dict[str, Any]:
        """Execute one validated operation against the world."""
        self._on_request(int(at_ns))
        self.requests_handled += 1
        w = self.world
        if op == "admit":
            return w.admit(params["vm"])
        if op == "release":
            return w.release(params["vm"])
        if op == "bid":
            return w.bid(params["vm"], params["resos"])
        if op == "ask":
            return w.ask(params["vm"], params["resos"])
        if op == "price":
            return w.price()
        if op == "order":
            return w.order(params["vm"], params["nbytes"])
        if op == "flush":
            return self._flush()
        if op == "stats":
            stats = w.stats()
            stats["mode"] = self.mode
            stats["requests_handled"] = self.requests_handled
            return stats
        raise ProtocolError(
            f"unknown operation {op!r} (have {', '.join(OPERATIONS)})"
        )

    def describe(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "policy": self.world.controller.policy.name,
            "slots": self.world.config.slots,
            "seed": self.world.seed,
        }


class SimBackend(ResExBackend):
    """The DES behind the service interface, virtual-time-stepped.

    The clock only moves when a request (or drain) moves it, and only
    forward: a request's ``at_ns`` below the current virtual time is
    clamped — late arrivals are processed "now", exactly like a real
    server that cannot rewind.
    """

    mode = "sim"

    def _on_request(self, at_ns: int) -> None:
        self.world.advance_to(at_ns)

    def _flush(self) -> Dict[str, Any]:
        completed = self.world.drain()
        return {
            "completed": completed,
            "pending": 0,
            "now_ns": self.world.now_ns,
        }


class LiveBackend(ResExBackend):
    """Real wall-clock epochs: an asyncio ticker drives the world.

    Virtual time tracks elapsed wall time (ns since :meth:`start`), so
    the controller's 1 ms pricing intervals and 1 s Reso epochs tick in
    real time whether or not requests arrive.  Request ``at_ns`` stamps
    are ignored — arrival time is *measured*, not declared.
    """

    mode = "live"

    def __init__(
        self,
        config: ServiceConfig = ServiceConfig(),
        seed: int = 7,
        world: Optional[ResExWorld] = None,
        tick_s: float = 0.02,
    ) -> None:
        super().__init__(config, seed, world)
        self.tick_s = float(tick_s)
        self._t0: Optional[float] = None
        self._ticker: Optional[asyncio.Task] = None

    def _elapsed_ns(self) -> int:
        assert self._t0 is not None, "LiveBackend.start() was never awaited"
        return int((asyncio.get_running_loop().time() - self._t0) * 1e9)

    async def start(self) -> None:
        if self._ticker is not None:
            return
        self._t0 = asyncio.get_running_loop().time()
        self._ticker = asyncio.create_task(self._tick(), name="resex-ticker")

    async def stop(self) -> None:
        if self._ticker is not None:
            self._ticker.cancel()
            try:
                await self._ticker
            except asyncio.CancelledError:
                pass
            self._ticker = None

    async def _tick(self) -> None:
        while True:
            await asyncio.sleep(self.tick_s)
            self.world.advance_to(self._elapsed_ns())

    def _on_request(self, at_ns: int) -> None:
        self.world.advance_to(self._elapsed_ns())

    def _flush(self) -> Dict[str, Any]:
        self.world.advance_to(self._elapsed_ns())
        completed = self.world.collect()
        return {
            "completed": completed,
            "pending": len(self.world._pending),
            "now_ns": self.world.now_ns,
        }
