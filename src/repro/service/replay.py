"""In-process deterministic service replay: no sockets, pure function.

This is the sim-mode service with the wire stripped away: a seeded
trace (:func:`~repro.service.loadgen.build_trace`) is routed straight
through an :class:`~repro.service.orchestrator.Orchestrator` mounted
on a :class:`~repro.service.backend.SimBackend`, and the response log
is digested exactly as the socket path digests it.  Because the
orchestrator serializes requests and the sim clock only moves on
``at_ns``, the digest is a pure function of ``(preset, seed)`` — the
contract the golden fixture pins and the sweep engine's
content-addressed cache exploits (the ``service`` job kind runs
through here).

The digest is a 256-bit hex string; sweep metrics must be floats, so
:func:`digest48` folds its first 48 bits into an exactly-representable
float — collisions would need ~16M colliding runs, far beyond what a
cache-equality check ever sees.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional

from repro.errors import ConfigError, ServiceError
from repro.service.backend import SimBackend
from repro.service.loadgen import build_trace, response_digest, response_log_lines
from repro.service.orchestrator import Orchestrator
from repro.service.world import ServiceConfig

#: Named replay presets (the ``service_replay`` scenario family).
SERVICE_SPECS: Dict[str, Dict[str, Any]] = {
    "service_smoke": {
        "requests": 500,
        "vms": 4,
        "slots": 8,
        "arrivals": "constant",
        "rate_per_s": 20_000.0,
    },
    "service_bursty": {
        "requests": 800,
        "vms": 6,
        "slots": 8,
        "arrivals": "bursty",
        "rate_per_s": 30_000.0,
    },
    "service_diurnal": {
        "requests": 800,
        "vms": 6,
        "slots": 8,
        "arrivals": "diurnal",
        "rate_per_s": 15_000.0,
    },
    "service_scale": {
        "requests": 3000,
        "vms": 16,
        "slots": 16,
        "arrivals": "constant",
        "rate_per_s": 50_000.0,
    },
}


def digest48(digest_hex: str) -> float:
    """First 48 bits of a hex digest as an exactly-representable float."""
    return float(int(digest_hex[:12], 16))


class ReplayResult:
    """Response log + digest + scalar metrics of one replay."""

    def __init__(
        self,
        preset: str,
        seed: int,
        lines: List[str],
        digest: str,
        orchestrator: Orchestrator,
        world_stats: Dict[str, Any],
        ok: int,
        errors: int,
        completed: int,
        latency_us: List[float],
    ) -> None:
        self.preset = preset
        self.seed = seed
        self.lines = lines
        self.digest = digest
        self.orchestrator = orchestrator
        self.world_stats = world_stats
        self.ok = ok
        self.errors = errors
        self.completed = completed
        self.latency_us = latency_us

    def metrics(self) -> Dict[str, float]:
        """Float-only metric dict (the sweep-cacheable surface)."""
        lat = sorted(self.latency_us)

        def pct(p: float) -> float:
            if not lat:
                return 0.0
            return lat[min(int(p / 100.0 * len(lat)), len(lat) - 1)]

        return {
            "requests": float(self.ok + self.errors),
            "ok": float(self.ok),
            "errors": float(self.errors),
            "orders_completed": float(self.completed),
            "p50_order_latency_us": round(pct(50.0), 6),
            "p99_order_latency_us": round(pct(99.0), 6),
            "resos_traded": float(self.world_stats["resos_traded"]),
            "epochs_run": float(self.world_stats["epochs_run"]),
            "digest48": digest48(self.digest),
        }


async def _replay(
    trace: List[Dict[str, Any]],
    orchestrator: Orchestrator,
) -> Dict[str, Any]:
    responses: Dict[int, Dict[str, Any]] = {}
    ok = errors = completed = 0
    latency_us: List[float] = []
    await orchestrator.start()
    try:
        for rid, req in enumerate(trace, start=1):
            try:
                data = await orchestrator.handle(
                    req["op"], req["params"], at_ns=req["at_ns"]
                )
                responses[rid] = {"op": req["op"], "ok": True, "data": data}
                ok += 1
                if req["op"] == "flush":
                    for done in data["completed"]:
                        completed += 1
                        latency_us.append(done["latency_us"])
            except ServiceError as exc:
                responses[rid] = {
                    "op": req["op"],
                    "ok": False,
                    "code": exc.code,
                    "error": str(exc),
                }
                errors += 1
    finally:
        await orchestrator.stop()
    return {
        "responses": responses,
        "ok": ok,
        "errors": errors,
        "completed": completed,
        "latency_us": latency_us,
    }


def run_service_replay(
    preset: str = "service_smoke",
    seed: int = 7,
    *,
    overrides: Optional[Dict[str, Any]] = None,
    telemetry=None,
) -> ReplayResult:
    """Replay one preset deterministically; returns the full result.

    ``overrides`` patches the preset spec (e.g. ``{"requests": 50}``
    for a fast test).  Safe to call from synchronous code — it runs a
    private event loop.
    """
    spec = SERVICE_SPECS.get(preset)
    if spec is None:
        raise ConfigError(
            f"unknown service preset {preset!r} "
            f"(have {', '.join(sorted(SERVICE_SPECS))})"
        )
    spec = {**spec, **(overrides or {})}
    config = ServiceConfig(
        slots=int(spec["slots"]),
        policy=str(spec.get("policy", "freemarket")),
    )
    trace = build_trace(
        requests=int(spec["requests"]),
        vms=int(spec["vms"]),
        seed=seed,
        arrivals=str(spec["arrivals"]),
        rate_per_s=float(spec["rate_per_s"]),
    )
    backend = SimBackend(config, seed=seed)
    orchestrator = Orchestrator(backend, telemetry=telemetry)
    outcome = asyncio.run(_replay(trace, orchestrator))
    responses = outcome["responses"]
    return ReplayResult(
        preset=preset,
        seed=seed,
        lines=response_log_lines(responses),
        digest=response_digest(responses),
        orchestrator=orchestrator,
        world_stats=backend.world.stats(),
        ok=outcome["ok"],
        errors=outcome["errors"],
        completed=outcome["completed"],
        latency_us=outcome["latency_us"],
    )
