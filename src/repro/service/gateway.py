"""The asyncio gateway: many clients, bounded queues, explicit overload.

One :class:`ServiceGateway` accepts any number of concurrent client
connections and funnels their requests into one
:class:`~repro.service.orchestrator.Orchestrator`.  Per connection:

* a **handshake** (hello/welcome, with a timeout so a silent socket
  cannot hold a session slot);
* a **reader** that parses length-prefixed frames and enqueues requests
  into a *bounded* per-client queue — when the queue is full the
  request is rejected immediately with a ``service-overloaded`` error
  frame (explicit backpressure, never unbounded buffering);
* a **worker** that drains the queue FIFO, routes each request through
  the orchestrator and writes the response or a structured error frame.

Failure containment is connection-scoped: a malformed or oversized
frame poisons only its own connection (one final ``err`` frame, then
close); a backend exception becomes an ``err`` frame and the
connection — and the gateway — live on; a client disconnecting
mid-request tears down its session's tasks and nothing else.

Every completed request contributes a wall-clock latency sample
(enqueue to response written).  Samples are emitted on the telemetry
bus as ``service``-category spans and aggregated into
:meth:`ServiceGateway.stats` percentiles — the gateway-overhead
numbers ``repro bench service_throughput`` reports.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Dict, Optional

from repro.errors import (
    FrameTooLarge,
    HandshakeError,
    ProtocolError,
    ServiceError,
)
from repro.service import protocol
from repro.service.orchestrator import Orchestrator
from repro.telemetry.bus import SERVICE

_QUEUE_DONE = object()


class _Session:
    """Per-connection state."""

    def __init__(self, session_id: int, client: str, max_queue: int) -> None:
        self.id = session_id
        self.client = client
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=max_queue)
        self.worker: Optional[asyncio.Task] = None
        self.requests = 0
        self.rejected = 0
        self.errors = 0


class ServiceGateway:
    """Serve a ResEx orchestrator over length-prefixed JSON frames."""

    def __init__(
        self,
        orchestrator: Orchestrator,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_queue: int = 256,
        max_frame: int = protocol.DEFAULT_MAX_FRAME,
        handshake_timeout_s: float = 5.0,
        telemetry=None,
        logger=None,
    ) -> None:
        self.orchestrator = orchestrator
        self.host = host
        self.port = port
        self.max_queue = int(max_queue)
        self.max_frame = int(max_frame)
        self.handshake_timeout_s = float(handshake_timeout_s)
        self.telemetry = telemetry
        self.logger = logger
        self._server: Optional[asyncio.base_events.Server] = None
        self._sessions: Dict[int, _Session] = {}
        self._session_seq = 0
        self._t0 = time.perf_counter()
        #: Wall-clock request latencies (seconds), enqueue -> response.
        self.latencies_s: list = []
        self.requests_served = 0
        self.requests_rejected = 0
        self.sessions_opened = 0
        self.protocol_errors = 0

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> None:
        """Start the backend and bind the listening socket."""
        await self.orchestrator.start()
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._t0 = time.perf_counter()
        if self.logger is not None:
            self.logger.info(
                f"service gateway listening on {self.host}:{self.port} "
                f"(mode={self.orchestrator.mode})"
            )

    async def stop(self) -> None:
        """Close the listener, tear down sessions, stop the backend."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for session in list(self._sessions.values()):
            if session.worker is not None:
                session.worker.cancel()
        for session in list(self._sessions.values()):
            if session.worker is not None:
                try:
                    await session.worker
                except (asyncio.CancelledError, Exception):
                    pass
        self._sessions.clear()
        await self.orchestrator.stop()

    async def drain(self, timeout_s: float = 10.0) -> None:
        """Graceful degradation: stop accepting, finish what's queued.

        Closes the listening socket (new dials are refused), then
        waits — bounded by ``timeout_s`` — for every session's queue
        to empty so already-accepted requests get their responses.
        Existing connections stay open; callers follow up with
        :meth:`stop` (typically after checkpointing the served world).
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        deadline = time.perf_counter() + float(timeout_s)
        while time.perf_counter() < deadline:
            if all(s.queue.empty() for s in self._sessions.values()):
                return
            await asyncio.sleep(0.01)

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() was never awaited"
        await self._server.serve_forever()

    # -- per-connection ------------------------------------------------------
    def _wall_ns(self) -> int:
        return int((time.perf_counter() - self._t0) * 1e9)

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        session: Optional[_Session] = None
        try:
            session = await self._handshake(reader, writer)
            if session is None:
                return
            await self._read_loop(session, reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer vanished; cleanup below
        finally:
            if session is not None:
                await self._teardown(session)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handshake(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> Optional[_Session]:
        try:
            hello = await asyncio.wait_for(
                protocol.read_frame(reader, self.max_frame),
                self.handshake_timeout_s,
            )
            if hello is None:
                return None
            client = protocol.check_hello(hello)
        except (HandshakeError, ProtocolError) as exc:
            self.protocol_errors += 1
            await self._write(
                writer, protocol.error_frame(None, exc.code, str(exc))
            )
            return None
        except asyncio.TimeoutError:
            self.protocol_errors += 1
            await self._write(
                writer,
                protocol.error_frame(
                    None, HandshakeError.code, "handshake timed out"
                ),
            )
            return None

        self._session_seq += 1
        session = _Session(self._session_seq, client, self.max_queue)
        self._sessions[session.id] = session
        self.sessions_opened += 1
        session.worker = asyncio.create_task(
            self._worker(session, writer), name=f"service-worker-{session.id}"
        )
        await self._write(
            writer,
            protocol.welcome_frame(session.id, self.orchestrator.mode),
        )
        if self.logger is not None:
            self.logger.debug(
                f"session {session.id} opened by {client!r}"
            )
        tel = self.telemetry
        if tel is not None and tel.enabled:
            tel.event(
                SERVICE,
                "session_open",
                self._wall_ns(),
                lane=f"session-{session.id}",
                client=client,
            )
        return session

    async def _read_loop(
        self,
        session: _Session,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        while True:
            try:
                frame = await protocol.read_frame(reader, self.max_frame)
            except (FrameTooLarge, ProtocolError) as exc:
                # Framing is broken: answer once, then give up on the
                # connection (but never on the gateway).
                self.protocol_errors += 1
                session.errors += 1
                await self._write(
                    writer, protocol.error_frame(None, exc.code, str(exc))
                )
                return
            if frame is None:
                return  # clean EOF
            try:
                frame = protocol.check_request(frame)
            except ProtocolError as exc:
                self.protocol_errors += 1
                session.errors += 1
                req_id = frame.get("id")
                req_id = req_id if isinstance(req_id, int) else None
                await self._write(
                    writer, protocol.error_frame(req_id, exc.code, str(exc))
                )
                if req_id is None:
                    return  # unanswerable breach: close
                continue  # shape error on a known id: connection survives
            item = (frame, time.perf_counter())
            try:
                session.queue.put_nowait(item)
            except asyncio.QueueFull:
                # Explicit backpressure: reject now, keep serving.
                session.rejected += 1
                self.requests_rejected += 1
                await self._write(
                    writer,
                    protocol.error_frame(
                        frame["id"],
                        "service-overloaded",
                        f"request queue full ({self.max_queue} deep); retry",
                    ),
                )

    async def _worker(
        self, session: _Session, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            item = await session.queue.get()
            if item is _QUEUE_DONE:
                return
            frame, t_enqueue = item
            try:
                data = await self.orchestrator.handle_request(
                    frame, session=session.id
                )
                out = protocol.response_frame(frame["id"], data)
            except ServiceError as exc:
                session.errors += 1
                out = protocol.error_frame(frame["id"], exc.code, str(exc))
            try:
                await self._write(writer, out)
            except (ConnectionError, RuntimeError):
                return  # peer gone mid-response; reader will clean up
            latency_s = time.perf_counter() - t_enqueue
            self.latencies_s.append(latency_s)
            self.requests_served += 1
            session.requests += 1
            tel = self.telemetry
            if tel is not None and tel.enabled:
                end_ns = self._wall_ns()
                tel.span(
                    SERVICE,
                    "request",
                    end_ns - int(latency_s * 1e9),
                    end_ns,
                    lane=f"session-{session.id}",
                    op=frame["op"],
                    ok=out.get("ok", False),
                )

    async def _teardown(self, session: _Session) -> None:
        """Connection-scoped cleanup: stop the worker, drop the session."""
        if session.worker is not None:
            try:
                session.queue.put_nowait(_QUEUE_DONE)
            except asyncio.QueueFull:
                session.worker.cancel()
            try:
                await session.worker
            except (asyncio.CancelledError, Exception):
                pass
            session.worker = None
        self._sessions.pop(session.id, None)
        tel = self.telemetry
        if tel is not None and tel.enabled:
            tel.event(
                SERVICE,
                "session_close",
                self._wall_ns(),
                lane=f"session-{session.id}",
                requests=session.requests,
                rejected=session.rejected,
            )
        if self.logger is not None:
            self.logger.debug(
                f"session {session.id} closed "
                f"({session.requests} requests, {session.rejected} rejected)"
            )

    async def _write(self, writer: asyncio.StreamWriter, frame: Dict[str, Any]) -> None:
        try:
            writer.write(protocol.encode_frame(frame, self.max_frame))
            await writer.drain()
        except (ConnectionError, OSError):
            pass  # peer gone; the read side notices and cleans up

    # -- introspection -------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        lat = sorted(self.latencies_s)

        def pct(p: float) -> float:
            if not lat:
                return 0.0
            idx = min(int(p / 100.0 * len(lat)), len(lat) - 1)
            return round(lat[idx] * 1e6, 3)

        return {
            "sessions_open": len(self._sessions),
            "sessions_opened": self.sessions_opened,
            "requests_served": self.requests_served,
            "requests_rejected": self.requests_rejected,
            "protocol_errors": self.protocol_errors,
            "p50_overhead_us": pct(50.0),
            "p99_overhead_us": pct(99.0),
            "orchestrator": self.orchestrator.stats(),
        }
