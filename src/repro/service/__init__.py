"""ResEx-as-a-service: gateway, orchestrator and swappable backends.

The paper's resource exchange, served: a versioned length-prefixed
JSON wire protocol (:mod:`repro.service.protocol`), an asyncio gateway
with bounded per-client queues and explicit overload rejection
(:mod:`repro.service.gateway`), an orchestrator that validates and
serializes every request (:mod:`repro.service.orchestrator`), and two
backends over one served DES world (:mod:`repro.service.backend`):
``live`` (wall-clock epochs) and ``sim`` (virtual-time-stepped,
byte-deterministic).  :mod:`repro.service.client` is the client
library, :mod:`repro.service.loadgen` the seeded load generator and
:mod:`repro.service.replay` the in-process deterministic replay the
golden fixture and the sweep engine's ``service`` job kind run on.
"""

from repro.service.backend import OPERATIONS, LiveBackend, ResExBackend, SimBackend
from repro.service.client import ServiceClient
from repro.service.gateway import ServiceGateway
from repro.service.loadgen import (
    ARRIVAL_KINDS,
    LoadgenReport,
    arrival_offsets,
    build_trace,
    response_digest,
    run_loadgen,
    run_trace,
)
from repro.service.orchestrator import OP_SCHEMAS, Orchestrator, validate_params
from repro.service.protocol import PROTOCOL
from repro.service.replay import SERVICE_SPECS, ReplayResult, run_service_replay
from repro.service.world import (
    WORLD_SCHEMA,
    ResExWorld,
    ServiceConfig,
    load_world_snapshot,
    save_world_snapshot,
)

__all__ = [
    "PROTOCOL",
    "OPERATIONS",
    "OP_SCHEMAS",
    "ARRIVAL_KINDS",
    "SERVICE_SPECS",
    "ServiceConfig",
    "ResExWorld",
    "ResExBackend",
    "SimBackend",
    "LiveBackend",
    "Orchestrator",
    "validate_params",
    "ServiceGateway",
    "ServiceClient",
    "LoadgenReport",
    "arrival_offsets",
    "build_trace",
    "response_digest",
    "run_trace",
    "run_loadgen",
    "ReplayResult",
    "run_service_replay",
    "WORLD_SCHEMA",
    "load_world_snapshot",
    "save_world_snapshot",
]
