"""The ResEx service wire protocol: versioned, length-prefixed JSON.

Frames are ``4-byte big-endian length + UTF-8 JSON object``.  The
length counts the JSON payload only and is bounded by a per-connection
``max_frame`` (oversized announcements are rejected before a single
payload byte is read, so a hostile header cannot make the gateway
allocate).  Four frame types cross the wire:

``hello`` / ``welcome``
    The client session handshake.  The client speaks first; the
    gateway answers with the negotiated protocol, a session id and the
    backend mode (``live`` or ``sim``).  A hello with the wrong
    protocol string is answered with an ``err`` frame and the
    connection is closed.

``req``
    ``{"type": "req", "id": n, "op": ..., "params": {...}, "at_ns": t}``
    — ``id`` is a client-chosen integer echoed in the answer (clients
    may pipeline), ``op`` names an orchestrator operation and the
    optional ``at_ns`` is the request's virtual arrival offset, which
    a sim-mode backend uses to step the simulation clock.  An optional
    ``ikey`` (idempotency key, a non-empty string) marks the request
    as safely re-sendable: the gateway keeps a bounded dedup window
    and answers a replayed key with the cached response instead of
    executing the operation twice — the contract that lets a client
    re-send in-flight requests after a reconnect.

``res`` / ``err``
    ``{"type": "res", "id": n, "ok": true, "data": {...}}`` or
    ``{"type": "err", "id": n, "ok": false, "code": ..., "error": ...}``.
    Error codes are the stable :mod:`repro.errors` service codes
    (``service-overloaded``, ``service-admission``, ...), so the client
    library re-raises the exact exception class the gateway caught.

Everything is a plain ``dict`` until it hits the socket; the encoder
uses canonical JSON (sorted keys, no whitespace) so identical frames
are byte-identical — the foundation of the sim-mode determinism golden.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, Optional

from repro.errors import FrameTooLarge, HandshakeError, ProtocolError

#: Protocol name + version, negotiated at handshake.
PROTOCOL = "resex-service/1"

#: Default upper bound on one frame's JSON payload (bytes).
DEFAULT_MAX_FRAME = 1024 * 1024

_HEADER = struct.Struct(">I")
HEADER_BYTES = _HEADER.size


def canonical_json(obj: Any) -> str:
    """Canonical JSON: sorted keys, minimal separators, no NaN."""
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def encode_frame(obj: Dict[str, Any], max_frame: int = DEFAULT_MAX_FRAME) -> bytes:
    """Serialize one frame (header + canonical JSON payload)."""
    payload = canonical_json(obj).encode("utf-8")
    if len(payload) > max_frame:
        raise FrameTooLarge(
            f"frame payload is {len(payload)} bytes (limit {max_frame})"
        )
    return _HEADER.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> Dict[str, Any]:
    """Parse one frame payload; raises :class:`ProtocolError` if it is
    not a JSON object."""
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(obj).__name__}"
        )
    return obj


async def read_frame(
    reader, max_frame: int = DEFAULT_MAX_FRAME
) -> Optional[Dict[str, Any]]:
    """Read one frame from an asyncio stream reader.

    Returns ``None`` on a clean EOF at a frame boundary.  Raises
    :class:`ProtocolError` on a truncated frame and
    :class:`FrameTooLarge` when the header announces a payload over
    ``max_frame`` — before reading any of it.
    """
    import asyncio

    try:
        header = await reader.readexactly(HEADER_BYTES)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError(
            f"connection closed mid-header ({len(exc.partial)}/"
            f"{HEADER_BYTES} bytes)"
        ) from None
    (length,) = _HEADER.unpack(header)
    if length > max_frame:
        raise FrameTooLarge(
            f"frame header announces {length} bytes (limit {max_frame})"
        )
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed mid-frame ({len(exc.partial)}/{length} bytes)"
        ) from None
    return decode_payload(payload)


# -- frame builders ----------------------------------------------------------

def hello_frame(client: str) -> Dict[str, Any]:
    return {"type": "hello", "proto": PROTOCOL, "client": str(client)}


def welcome_frame(session: int, mode: str) -> Dict[str, Any]:
    return {
        "type": "welcome",
        "proto": PROTOCOL,
        "session": int(session),
        "mode": mode,
    }


def request_frame(
    req_id: int,
    op: str,
    params: Optional[Dict[str, Any]] = None,
    at_ns: Optional[int] = None,
    ikey: Optional[str] = None,
) -> Dict[str, Any]:
    frame: Dict[str, Any] = {
        "type": "req",
        "id": int(req_id),
        "op": str(op),
        "params": dict(params or {}),
    }
    if at_ns is not None:
        frame["at_ns"] = int(at_ns)
    if ikey is not None:
        frame["ikey"] = str(ikey)
    return frame


def response_frame(req_id: int, data: Dict[str, Any]) -> Dict[str, Any]:
    return {"type": "res", "id": int(req_id), "ok": True, "data": data}


def error_frame(
    req_id: Optional[int], code: str, message: str
) -> Dict[str, Any]:
    return {
        "type": "err",
        "id": None if req_id is None else int(req_id),
        "ok": False,
        "code": code,
        "error": message,
    }


# -- frame validation --------------------------------------------------------

def check_hello(frame: Dict[str, Any]) -> str:
    """Validate a client hello; returns the client name."""
    if frame.get("type") != "hello":
        raise HandshakeError(
            f"expected a hello frame, got type {frame.get('type')!r}"
        )
    proto = frame.get("proto")
    if proto != PROTOCOL:
        raise HandshakeError(
            f"protocol mismatch: client speaks {proto!r}, server speaks "
            f"{PROTOCOL!r}"
        )
    return str(frame.get("client", "anonymous"))


def check_welcome(frame: Dict[str, Any]) -> Dict[str, Any]:
    """Validate a server welcome; returns it."""
    if frame.get("type") == "err":
        raise HandshakeError(
            f"server rejected handshake [{frame.get('code')}]: "
            f"{frame.get('error')}"
        )
    if frame.get("type") != "welcome":
        raise HandshakeError(
            f"expected a welcome frame, got type {frame.get('type')!r}"
        )
    if frame.get("proto") != PROTOCOL:
        raise HandshakeError(
            f"protocol mismatch: server speaks {frame.get('proto')!r}"
        )
    return frame


def check_request(frame: Dict[str, Any]) -> Dict[str, Any]:
    """Validate an inbound request frame's shape; returns it.

    Raises :class:`ProtocolError` — the caller decides whether the
    breach is per-request (an ``id`` exists to answer on) or fatal.
    """
    if frame.get("type") != "req":
        raise ProtocolError(
            f"expected a req frame, got type {frame.get('type')!r}"
        )
    req_id = frame.get("id")
    if not isinstance(req_id, int) or isinstance(req_id, bool):
        raise ProtocolError(f"request id must be an integer, got {req_id!r}")
    op = frame.get("op")
    if not isinstance(op, str) or not op:
        raise ProtocolError(f"request op must be a non-empty string, got {op!r}")
    params = frame.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError(
            f"request params must be an object, got {type(params).__name__}"
        )
    at_ns = frame.get("at_ns", 0)
    if not isinstance(at_ns, int) or isinstance(at_ns, bool) or at_ns < 0:
        raise ProtocolError(
            f"request at_ns must be a non-negative integer, got {at_ns!r}"
        )
    ikey = frame.get("ikey")
    if ikey is not None and (not isinstance(ikey, str) or not ikey):
        raise ProtocolError(
            f"request ikey must be a non-empty string, got {ikey!r}"
        )
    return frame
