"""ResEx reproduction: latency-aware scheduling for virtualized RDMA.

Full-system simulation reproduction of Ranadive, Gavrilovska, Schwan:
"ResourceExchange: Latency-Aware Scheduling in Virtualized Environments
with High Performance Fabrics" (IEEE CLUSTER 2011).

Subpackages
-----------
sim
    Deterministic discrete-event kernel (integer-ns clock).
hw
    Hosts, CPUs, memory frames, max-min fair fabric.
ib
    InfiniBand substrate: verbs, QPs, CQs, TPT, UAR, HCA engine.
xen
    Hypervisor substrate: domains, credit scheduler with caps,
    introspection, split driver, XenStat.
ibmon
    Introspection-based I/O monitoring (the paper's IBMon).
resex
    The contribution: Resos currency, pricing policies, controller.
benchex
    The latency-sensitive trading benchmark (the paper's BenchEx).
finance
    Options-pricing library backing BenchEx request processing.
workloads
    Synthetic exchange traces.
experiments
    Canonical testbed, scenario runner, per-figure experiments.
analysis
    Result summaries and text rendering.
"""

from repro._version import __version__

__all__ = ["__version__"]
