#!/usr/bin/env python3
"""Consolidation planning: trading VMs + a bulk-data VM on one host.

Exchanges overprovision because latency SLAs are fragile (paper §I:
machines under 10% utilized).  The consolidation question is whether
latency-critical trading VMs can share a host with the bulk workloads
that would otherwise need their own machine (market-data distribution,
risk analytics).  This sweep packs k paced trading VMs plus one 1 MB
bulk VM onto the server host and checks the trading SLA — first
unmanaged, then with ResEx/IOShares pricing the bulk VM's congestion.

Run:  python examples/consolidation_planning.py
"""

import numpy as np

from repro.analysis import LatencySummary, render_table
from repro.benchex import BenchExConfig, BenchExPair, run_pairs
from repro.experiments import Testbed
from repro.resex import IOShares, LatencySLA, ResExController
from repro.units import SEC, KiB

BASE_MEAN_US = 209.0
SLA_MEAN_US = BASE_MEAN_US * 1.20
SLA_P99_US = 360.0
MAX_TRADING_VMS = 3

#: Trading VMs run paced (~1 ms think time: bursty but far from
#: saturating), the regime the paper's underutilization argument implies.
TRADING = BenchExConfig(
    name="trading", warmup_requests=30, think_time_ns=1_000_000
)
BULK = BenchExConfig(name="bulk", buffer_bytes=1024 * KiB, pipeline_depth=2)


def run_consolidated(n_trading: int, managed: bool, sim_s: float = 1.2):
    bed = Testbed.paper_testbed(seed=100 + n_trading)
    server_host, client_host = bed.node("server-host"), bed.node("client-host")
    traders = [
        BenchExPair(
            bed, server_host, client_host,
            BenchExConfig(
                name=f"trading{i}",
                warmup_requests=TRADING.warmup_requests,
                think_time_ns=TRADING.think_time_ns,
            ),
            with_agent=managed,
        )
        for i in range(n_trading)
    ]
    bulk = BenchExPair(bed, server_host, client_host, BULK)
    if managed:
        controller = ResExController(server_host, IOShares())
        sla = LatencySLA(BASE_MEAN_US, 3.0, 10.0)
        for vm in traders:
            controller.monitor(vm.server_dom, agent=vm.agent, sla=sla)
        controller.monitor(bulk.server_dom)
        controller.start()
    run_pairs(bed, traders + [bulk], until_ns=int(sim_s * SEC))
    pooled = np.concatenate([t.client.latency_array() for t in traders])
    return LatencySummary.from_samples(pooled)


def main() -> None:
    print(
        f"Trading SLA: mean < {SLA_MEAN_US:.0f} us, p99 < {SLA_P99_US:.0f} us "
        f"(base = {BASE_MEAN_US:.0f} us); host also carries one 1MB bulk VM\n"
    )
    rows = []
    verdicts = {}
    for managed in (False, True):
        label = "ResEx/IOShares" if managed else "unmanaged"
        fit = 0
        for n in range(1, MAX_TRADING_VMS + 1):
            summary = run_consolidated(n, managed)
            ok = summary.mean < SLA_MEAN_US and summary.p99 < SLA_P99_US
            if ok and fit == n - 1:
                fit = n
            rows.append(
                [
                    label,
                    n,
                    summary.mean,
                    summary.p99,
                    "meets SLA" if ok else "VIOLATES",
                ]
            )
        verdicts[label] = fit
    print(
        render_table(
            ["host", "trading VMs", "mean (us)", "p99 (us)", "verdict"],
            rows,
            title="Consolidation sweep (trading VMs alongside the bulk VM)",
        )
    )
    for label, fit in verdicts.items():
        if fit:
            print(
                f"\n{label}: up to {fit} trading VM(s) share the host with "
                "the bulk VM within SLA."
            )
        else:
            print(f"\n{label}: the bulk VM alone breaks every trading SLA.")


if __name__ == "__main__":
    main()
