#!/usr/bin/env python3
"""Quickstart: see the interference problem and fix it with ResEx.

Builds the paper's testbed (two hosts over a simulated InfiniBand
fabric), runs a latency-sensitive 64 KB trading workload alone, then
beside a 2 MB interferer, then beside the same interferer with the
IOShares congestion-pricing policy managing the host.

Run:  python examples/quickstart.py
"""

from repro.analysis import interference_reduction_pct, render_table
from repro.benchex import INTERFERER_2MB, BenchExConfig, BenchExPair, run_pairs
from repro.experiments import Testbed
from repro.resex import IOShares, LatencySLA, ResExController
from repro.units import SEC


def run_case(with_interferer: bool, with_resex: bool, sim_s: float = 1.0):
    """One scenario; returns the mean latency of the reporting VM (us)."""
    bed = Testbed.paper_testbed(seed=42)
    server_host = bed.node("server-host")
    client_host = bed.node("client-host")

    # The latency-sensitive application: 64 KB messages, FCFS.
    reporting = BenchExPair(
        bed,
        server_host,
        client_host,
        BenchExConfig(name="trading", warmup_requests=50),
        with_agent=with_resex,  # the in-VM agent feeds ResEx latencies
    )
    pairs = [reporting]

    interferer = None
    if with_interferer:
        interferer = BenchExPair(bed, server_host, client_host, INTERFERER_2MB)
        pairs.append(interferer)

    if with_resex:
        controller = ResExController(server_host, IOShares())
        controller.monitor(
            reporting.server_dom,
            agent=reporting.agent,
            sla=LatencySLA(base_mean_us=209.0, base_std_us=3.0, threshold_pct=10.0),
        )
        if interferer is not None:
            controller.monitor(interferer.server_dom)
        controller.start()

    run_pairs(bed, pairs, until_ns=int(sim_s * SEC))
    latencies = reporting.server.latencies_us()
    return float(latencies.mean()), float(latencies.std())


def main() -> None:
    print("Simulating... (three scenarios, ~1 simulated second each)\n")
    base_mean, base_std = run_case(with_interferer=False, with_resex=False)
    intf_mean, intf_std = run_case(with_interferer=True, with_resex=False)
    resex_mean, resex_std = run_case(with_interferer=True, with_resex=True)

    print(
        render_table(
            ["scenario", "mean latency (us)", "jitter (us)"],
            [
                ["64KB VM alone (base)", base_mean, base_std],
                ["+ 2MB interferer", intf_mean, intf_std],
                ["+ 2MB interferer + ResEx/IOShares", resex_mean, resex_std],
            ],
            title="BenchEx reporting-VM latency",
        )
    )
    reduction = interference_reduction_pct(intf_mean, resex_mean)
    print(
        f"\nResEx removed {reduction:.0f}% of the latency interference "
        f"(paper claims 'as much as 30%')."
    )


if __name__ == "__main__":
    main()
