#!/usr/bin/env python3
"""Writing your own pricing policy.

ResEx is a policy framework (paper §V-D): anything that can observe
MTUsSent / CPU% / latency reports and set CPU caps is a pricing scheme.
This example implements *SpotMarket*, a surge-pricing policy the paper
does not have: the per-MTU price rises with total link demand (supply
and demand in its purest form), and any VM whose spending rate would
exhaust its budget before the epoch ends is capped proportionally.

It then races SpotMarket against the paper's two policies on the
canonical 64KB-vs-2MB scenario.

Run:  python examples/custom_policy.py
"""

from repro.analysis import render_table
from repro.benchex import INTERFERER_2MB, BenchExConfig, BenchExPair, run_pairs
from repro.experiments import Testbed
from repro.resex import (
    FreeMarket,
    IOShares,
    LatencySLA,
    PricingPolicy,
    ResExController,
    register_policy,
)
from repro.units import SEC


@register_policy
class SpotMarket(PricingPolicy):
    """Demand-driven surge pricing.

    Each interval, the unit I/O price is

        price = 1 + surge x (windowed link demand / link capacity)

    so heavy aggregate demand makes *every* MTU more expensive.  A VM
    whose Reso balance would not cover the rest of the epoch at its
    current burn rate gets its cap scaled down to the sustainable
    fraction — throttling is proportional to overspend, with no explicit
    interference detection at all.
    """

    name = "spotmarket"

    def __init__(self, surge: float = 4.0, cap_floor: int = 5) -> None:
        self.surge = surge
        self.cap_floor = cap_floor

    def on_interval(self, controller) -> None:
        params = controller.reso_params
        fabric = controller.node.hca.params
        # Windowed aggregate demand vs what the link could carry.
        window_intervals = controller.mtu_window
        capacity = (
            fabric.mtus_per_second
            * window_intervals
            * (params.interval_ns / SEC)
        )
        demand = sum(vm.windowed_mtus() for vm in controller.vms)
        price = 1.0 + self.surge * min(demand / capacity, 1.0)

        intervals_left = max(
            round(controller.epoch_fraction_remaining * params.intervals_per_epoch),
            1,
        )
        fair_share = capacity / max(len(controller.vms), 1)
        for vm in controller.vms:
            vm.charge_rate = price
            spend = (
                controller.get_mtus(vm) * price
                + controller.get_cpu_percent(vm) * price
            )
            vm.account.deduct(spend)

            # Throttle only above-fair-share users whose burn rate would
            # exhaust their budget before the epoch ends.
            if vm.windowed_mtus() <= fair_share:
                controller.set_cap(vm, 100)
                continue
            sustainable = vm.account.balance / intervals_left
            recent = max(spend, 1e-9)
            if recent > sustainable:
                cap = max(round(100.0 * sustainable / recent), self.cap_floor)
            else:
                cap = 100
            controller.set_cap(vm, cap)

    def on_epoch(self, controller) -> None:
        for vm in controller.vms:
            controller.set_cap(vm, 100)


def run_with(policy, sim_s: float = 1.5):
    bed = Testbed.paper_testbed(seed=11)
    server_host, client_host = bed.node("server-host"), bed.node("client-host")
    reporting = BenchExPair(
        bed, server_host, client_host,
        BenchExConfig(name="rep", warmup_requests=50),
        with_agent=policy is not None,
    )
    interferer = BenchExPair(bed, server_host, client_host, INTERFERER_2MB)
    if policy is not None:
        controller = ResExController(server_host, policy)
        controller.monitor(
            reporting.server_dom,
            agent=reporting.agent,
            sla=LatencySLA(209.0, 3.0, 10.0),
        )
        controller.monitor(interferer.server_dom)
        controller.start()
    run_pairs(bed, [reporting, interferer], until_ns=int(sim_s * SEC))
    lat = reporting.server.latencies_us()
    return float(lat.mean()), float(lat.std())


def main() -> None:
    print("Racing pricing policies on the 64KB-vs-2MB scenario...\n")
    rows = []
    for label, policy in [
        ("none (interfered)", None),
        ("FreeMarket", FreeMarket()),
        ("IOShares", IOShares()),
        ("SpotMarket (custom)", SpotMarket()),
    ]:
        mean, std = run_with(policy)
        rows.append([label, mean, std])
    print(
        render_table(
            ["policy", "mean latency (us)", "jitter (us)"],
            rows,
            title="Reporting-VM latency by pricing policy",
        )
    )
    print(
        "\nSpotMarket needs no latency feedback at all - price pressure "
        "alone throttles the heavy spender. Compare how close each "
        "policy gets to the ~209 us base."
    )


if __name__ == "__main__":
    main()
