#!/usr/bin/env python3
"""A compressed trading day on a consolidated exchange host.

Three trading engines (VMs) share one server host: two latency-critical
64 KB matching engines and one 1 MB market-data/analytics engine.  The
clients follow a synthetic trading-day intensity profile — an opening
burst, a quieter midday, a closing burst (the substitution for the
paper's proprietary ICE traces).

The script runs the day twice — unmanaged, then under IOShares — and
reports per-engine latency summaries for each phase of the day.

Run:  python examples/trading_day.py
"""

import numpy as np

from repro.analysis import LatencySummary, render_table
from repro.benchex import BenchExConfig, BenchExPair
from repro.experiments import Testbed
from repro.resex import IOShares, LatencySLA, ResExController
from repro.units import SEC, KiB
from repro.workloads import TradingDayConfig, TradingDayTrace

DAY = TradingDayConfig(
    day_s=3.0,           # a compressed 3-simulated-second "day"
    open_fraction=0.2,
    close_fraction=0.2,
    midday_rate_hz=800.0,
    burst_factor=4.0,
)


def run_day(managed: bool):
    bed = Testbed.paper_testbed(seed=2026)
    server_host, client_host = bed.node("server-host"), bed.node("client-host")

    engines = [
        BenchExPair(
            bed, server_host, client_host,
            BenchExConfig(name="match-A", buffer_bytes=64 * KiB, warmup_requests=20),
            with_agent=managed,
        ),
        BenchExPair(
            bed, server_host, client_host,
            BenchExConfig(name="match-B", buffer_bytes=64 * KiB, warmup_requests=20),
            with_agent=managed,
        ),
        BenchExPair(
            bed, server_host, client_host,
            BenchExConfig(
                name="mktdata", buffer_bytes=1024 * KiB, pipeline_depth=2
            ),
        ),
    ]

    if managed:
        controller = ResExController(server_host, IOShares())
        sla = LatencySLA(base_mean_us=209.0, base_std_us=3.0, threshold_pct=10.0)
        for engine in engines[:2]:
            controller.monitor(engine.server_dom, agent=engine.agent, sla=sla)
        controller.monitor(engines[2].server_dom)
        controller.start()

    # Pace the matching engines' clients with the trading-day trace.
    def deploy(env):
        for engine in engines:
            yield from engine.deploy()
        for i, engine in enumerate(engines[:2]):
            trace = TradingDayTrace(DAY, bed.rng.stream(f"trace/{i}"))
            engine.client.pacer = trace.next_gap_ns
        for engine in engines:
            engine.start()

    bed.env.process(deploy(bed.env), name="deploy")
    bed.env.run(until=int(DAY.day_s * SEC))
    return engines


def phase_of(t_ns: int) -> str:
    phase = (t_ns / SEC) / DAY.day_s
    if phase < DAY.open_fraction:
        return "open"
    if phase >= 1.0 - DAY.close_fraction:
        return "close"
    return "midday"


def summarize(engines, label):
    """Client-side request latency per phase.

    (Server-side records measure the full serve cycle including idle
    request-wait, which for a paced workload is mostly think time — the
    client's request->response time is the metric a trader cares about.)
    """
    rows = []
    for engine in engines[:2]:
        by_phase = {"open": [], "midday": [], "close": []}
        for t_done, latency_us in engine.client.samples:
            by_phase[phase_of(t_done)].append(latency_us)
        for phase in ("open", "midday", "close"):
            s = LatencySummary.from_samples(by_phase[phase])
            rows.append([engine.config.name, phase, s.n, s.mean, s.p99])
    print(
        render_table(
            ["engine", "phase", "requests", "mean (us)", "p99 (us)"],
            rows,
            title=f"\n{label}",
        )
    )
    pooled = np.concatenate([e.client.latency_array() for e in engines[:2]])
    return float(pooled.mean())


def main() -> None:
    print("Simulating one trading day, unmanaged then managed...\n")
    unmanaged = run_day(managed=False)
    managed = run_day(managed=True)
    mean_u = summarize(unmanaged, "Unmanaged host (no ResEx)")
    mean_m = summarize(managed, "Managed host (ResEx / IOShares)")
    print(
        f"\nMatching-engine mean latency: {mean_u:.1f} us unmanaged vs "
        f"{mean_m:.1f} us with ResEx."
    )


if __name__ == "__main__":
    main()
