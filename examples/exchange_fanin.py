#!/usr/bin/env python3
"""A consolidated exchange: one matching engine, many client gateways.

Uses the N:1 fan-in deployment (shared receive queue) the paper's
BenchEx description implies: several client VMs submit transactions to
one FCFS trading server.  The sweep shows where client latency goes as
gateways are added, then demonstrates the two congestion actuators —
CPU caps (IOShares, the paper's) and hardware rate limits (HwShares) —
protecting the exchange from a collocated bulk-data VM.

Run:  python examples/exchange_fanin.py
"""

from repro.analysis import render_table
from repro.benchex import (
    INTERFERER_2MB,
    BenchExConfig,
    BenchExFanIn,
    BenchExPair,
)
from repro.experiments import Testbed
from repro.resex import HwShares, IOShares, LatencySLA, ResExController
from repro.units import SEC


def run_fanin_sweep():
    rows = []
    for n_clients in (1, 2, 4):
        bed = Testbed.paper_testbed(seed=77)
        s, c = bed.node("server-host"), bed.node("client-host")
        fan = BenchExFanIn(
            bed, s, c,
            BenchExConfig(name="exchange", warmup_requests=30),
            n_clients=n_clients,
        )

        def deploy(env, fan=fan):
            yield from fan.deploy()
            fan.start()

        bed.env.process(deploy(bed.env))
        bed.env.run(until=int(0.5 * SEC))
        lat = fan.client_latencies_us()
        rate = fan.server.requests_served / (bed.env.now / SEC)
        rows.append([n_clients, float(lat.mean()), rate])
    print(
        render_table(
            ["client gateways", "mean latency (us)", "server req/s"],
            rows,
            title="Fan-in sweep (no interference)",
        )
    )


def run_protected(policy, label):
    bed = Testbed.paper_testbed(seed=77)
    s, c = bed.node("server-host"), bed.node("client-host")
    fan = BenchExFanIn(
        bed, s, c,
        BenchExConfig(name="exchange", warmup_requests=30),
        n_clients=2,
        with_agent=policy is not None,
    )
    bulk = BenchExPair(bed, s, c, INTERFERER_2MB)

    controller = None
    if policy is not None:
        controller = ResExController(s, policy)
        # The agent reports the server's own service time, which at
        # 2-client saturation is ~147us (PTime ~0: requests are always
        # queued).  The SLA must baseline that metric, not the client's
        # round-trip view.
        controller.monitor(
            fan.server_dom,
            agent=fan.agent,
            sla=LatencySLA(base_mean_us=147.0, base_std_us=3.0),
        )
        controller.monitor(bulk.server_dom)

    def deploy(env):
        yield from fan.deploy()
        yield from bulk.deploy()
        fan.start()
        bulk.start()

    bed.env.process(deploy(bed.env))
    if controller is not None:
        controller.start()
    bed.env.run(until=int(1.2 * SEC))
    lat = fan.client_latencies_us()
    bulk_cpu = bulk.server_dom.vcpu.cumulative_ns / bed.env.now * 100
    return [label, float(lat.mean()), float(lat.std()), bulk_cpu]


def main() -> None:
    print("Simulating the consolidated exchange...\n")
    run_fanin_sweep()

    rows = [
        run_protected(None, "unprotected"),
        run_protected(IOShares(), "IOShares (CPU caps)"),
        run_protected(HwShares(), "HwShares (HW rate limits)"),
    ]
    print()
    print(
        render_table(
            ["configuration", "mean (us)", "jitter (us)", "bulk-VM CPU %"],
            rows,
            title="2-gateway exchange + 2MB bulk-data neighbour",
        )
    )
    print(
        "\nBoth actuators protect the exchange; the HW limiter does it "
        "without starving the bulk VM's CPU."
    )


if __name__ == "__main__":
    main()
