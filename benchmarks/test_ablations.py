"""Ablation benches: one design choice varied at a time (DESIGN.md §6).

Not paper figures — these probe the mechanisms the paper fixes by fiat
(depletion action, equal Reso shares, busy-polling guests, 1 ms ResEx
interval with ~250 us IBMon sampling, fluid link model) and record how
the canonical 64KB-vs-2MB outcome depends on each.
"""

import pathlib

import pytest

from repro.experiments.ablations import ALL_ABLATIONS

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def run_ablation(benchmark, capsys):
    def _run(name: str):
        result = benchmark.pedantic(
            ALL_ABLATIONS[name], rounds=1, iterations=1, warmup_rounds=0
        )
        text = result.render()
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"ablation_{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print(f"\n{text}\n")
        return result

    return _run


def test_ablation_depletion_modes(run_ablation):
    result = run_ablation("depletion")
    # All three out-of-Resos actions contain the interferer below the
    # uncontrolled ~325 us level; 'hard' throttles at least as much CPU
    # as 'gradual' on average.
    for mode in ("gradual", "hard", "proportional"):
        assert result.extra[mode]["mean_us"] < 300.0
    assert (
        result.extra["hard"]["cap_mean"]
        <= result.extra["gradual"]["cap_mean"] + 1.0
    )


def test_ablation_weighted_shares(run_ablation):
    result = run_ablation("weights")
    # More victim priority -> earlier interferer starvation -> lower
    # victim latency, monotonically.
    assert result.extra["3:1"] < result.extra["1:1"]
    assert result.extra["9:1"] <= result.extra["3:1"] + 2.0


def test_ablation_completion_mode(run_ablation):
    result = run_ablation("completion")
    poll_gain = result.extra["poll/cap100"] - result.extra["poll/cap10"]
    event_gain = result.extra["event/cap100"] - result.extra["event/cap10"]
    # The cap removes most interference from a polling guest...
    assert poll_gain > 50.0
    # ...but much less from an event-driven one: the lever weakens.
    assert event_gain < poll_gain * 0.6


def test_ablation_sampling_interval(run_ablation):
    result = run_ablation("sampling")
    fine = result.extra["100"]
    coarse = result.extra["5000"]
    # Outcome degrades gracefully: even 50x coarser sampling changes the
    # managed latency by under 15%.
    assert abs(coarse - fine) < 0.15 * fine


def test_ablation_reaction_time(run_ablation):
    result = run_ablation("reaction")
    ios = result.extra["ioshares"]
    # IOShares reacts within a few detector windows (well under 200 ms)
    # and settles near base.
    assert ios["reaction_ms"] < 200.0
    assert ios["settled_mean_us"] < 260.0
    # The static rule also reacts quickly (needs one observed CQE).
    assert result.extra["static-ratio"]["reaction_ms"] < 100.0


def test_ablation_fanin_scaling(run_ablation):
    result = run_ablation("fanin")
    # Per-client latency grows monotonically with client count...
    means = [result.extra[str(n)]["mean_us"] for n in (1, 2, 4, 6)]
    assert means == sorted(means)
    assert means[0] == pytest.approx(209.0, abs=8.0)
    # ...while server throughput saturates (4 vs 6 clients ~equal).
    r4 = result.extra["4"]["rate_hz"]
    r6 = result.extra["6"]["rate_hz"]
    assert r6 == pytest.approx(r4, rel=0.10)


def test_ablation_link_models(run_ablation):
    result = run_ablation("linkmodel")
    # Fluid and exact packet models agree to within 1% on completion
    # times across workload mixes.
    assert result.extra["worst_error_pct"] < 1.0


def test_ablation_federation(run_ablation):
    result = run_ablation("federation")
    single = result.extra["server-side only"]
    federated = result.extra["federated"]
    # Pricing the interferer's client side too removes residual ingress
    # interference: at least as good, typically several us better.
    assert federated < single + 1.0
    assert federated < 235.0


def test_ablation_actuators(run_ablation):
    result = run_ablation("actuators")
    caps = result.extra["ioshares"]
    hw = result.extra["hw-shares"]
    # Both actuators protect the victim comparably...
    assert abs(caps["victim_mean_us"] - hw["victim_mean_us"]) < 15.0
    # ...but HW limiting leaves the interferer its CPU (busy-polling a
    # slow flow) where the cap starves it.
    assert hw["intf_cpu_pct"] > caps["intf_cpu_pct"] * 2.0
