"""Figure 1: latency distribution of a normal vs interfered server.

Paper: the normal server is 'highly stable at around 209 us'; with the
interfering load 'the latencies are distributed across the interval' —
both the average and the jitter increase.
"""


def test_fig1_latency_distribution(run_figure):
    result = run_figure("fig1")
    normal = result.extra["normal"]
    interfered = result.extra["interfered"]

    # M1 calibration: base case ~209 us and essentially noise-free.
    assert abs(normal["mean_us"] - 209.0) < 6.0
    assert normal["std_us"] < 6.0

    # Interference raises the mean substantially...
    assert interfered["mean_us"] > normal["mean_us"] * 1.3
    # ...and spreads the distribution (jitter).
    assert interfered["std_us"] > normal["std_us"] * 3.0
    # The interfered distribution covers a wide interval.
    spread = interfered["p99_us"] - interfered["min_us"]
    assert spread > 50.0
