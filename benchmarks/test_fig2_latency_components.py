"""Figure 2: CTime/WTime/PTime vs number of servers, +/- interfering load.

Paper: 'Since CTime is independent of I/O interference it remains
fairly constant... both WTime and PTime start increasing with load';
without the interference generator, collocating only the latency
applications degrades much less.
"""


def test_fig2_latency_components(run_figure):
    result = run_figure("fig2")
    one = result.extra["1"]
    one_load = result.extra["1+load"]
    three = result.extra["3"]
    three_load = result.extra["3+load"]

    # CTime flat in every configuration.
    ctimes = [
        result.extra[k]["ctime_mean_us"]
        for k in ("1", "1+load", "2", "2+load", "3", "3+load")
    ]
    assert max(ctimes) - min(ctimes) < 0.05 * max(ctimes)

    # Load inflates WTime and PTime.
    assert one_load["wtime_mean_us"] > one["wtime_mean_us"] * 1.3
    assert one_load["ptime_mean_us"] > one["ptime_mean_us"] * 1.3

    # More collocated servers -> more (mild) contention even unloaded.
    assert three["total_mean_us"] >= one["total_mean_us"]

    # Collocating only latency apps hurts far less than adding the
    # interference generator.
    delta_servers = three["total_mean_us"] - one["total_mean_us"]
    delta_load = three_load["total_mean_us"] - three["total_mean_us"]
    assert delta_load > delta_servers
