"""Figure 6: Reso balance trajectories under FreeMarket (rated capping).

Paper: 'The algorithm keeps deducting Resos until a minimum level (10%)
is reached after which it starts reducing the CPU Cap.  The effect of
this is seen by the 2MB VM.'
"""


def test_fig6_reso_depletion(run_figure):
    result = run_figure("fig6")
    big = result.extra["2MB VM"]
    small = result.extra["64KB VM"]

    # The 2MB VM drains its allocation within the epoch...
    assert big["min"] < big["start"] * 0.05
    # ...and its cap is driven to the FreeMarket floor.
    assert big["cap_min"] == 10

    # The 64KB VM's demand fits its allocation: balance never collapses
    # and its cap is never reduced.
    assert small["min"] > small["start"] * 0.10
    assert small["cap_min"] == 100
