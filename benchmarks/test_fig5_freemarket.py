"""Figure 5: application latency under the FreeMarket policy.

Paper: 'the latency of the 64KB VM (reporting VM) is lower when
FreeMarket allocation is performed than the interfering case... the CPU
cap is lowered for the 2MB VM periodically whenever its Reso count
decreases below a minimum'.
"""


def test_fig5_freemarket(run_figure):
    result = run_figure("fig5")
    base = result.extra["base_mean"]
    intf = result.extra["intf_mean"]
    fm = result.extra["fm_mean"]

    # FreeMarket sits between the interfered and base cases.
    assert fm < intf - 15.0
    assert fm > base + 10.0  # work-conserving: does not eliminate congestion

    # The 2MB VM's cap was lowered periodically (reaching the floor)...
    cap_min = dict((r[0], r[1]) for r in result.rows)["2MB-VM cap (min)"]
    assert cap_min == 10
    # ...but not permanently (epoch replenish restores it).
    cap_mean = dict((r[0], r[1]) for r in result.rows)["2MB-VM cap (mean)"]
    assert cap_mean > 30
