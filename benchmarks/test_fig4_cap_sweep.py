"""Figure 4: reporting-VM latency as the 2MB interferer's cap decreases.

Paper: 'by changing the CPU cap steadily the latencies experienced by
the reporting VM decrease', approaching the base latency when the cap
reaches the buffer-ratio value (3 for 2MB/64KB).
"""


def test_fig4_cap_sweep(run_figure):
    result = run_figure("fig4")
    totals = result.extra["totals"]

    # Broadly monotone: full cap worst, ratio cap best among caps.
    assert totals[100] == max(totals[c] for c in (100, 50, 20, 3))
    assert totals[3] == min(totals[c] for c in (100, 50, 20, 3))

    # A substantial fraction of the interference is removed at cap=3.
    interference = totals[100] - totals["base"]
    removed = totals[100] - totals[3]
    assert removed > 0.6 * interference

    # Deviation note (EXPERIMENTS.md): the fluid link leaves a small
    # residual above base from the interferer's rare large transfers.
    assert totals[3] < totals["base"] * 1.20
