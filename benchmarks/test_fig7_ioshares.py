"""Figure 7: application latency under the IOShares policy.

Paper: 'the algorithm is able to achieve near base case latencies for
the application by taking into consideration the interference
percentage of the 64KB VM and thus charging the 2MB VM more... The CPU
Cap is changed dynamically to a lower value for the 2MB VM'.
"""


def test_fig7_ioshares(run_figure):
    result = run_figure("fig7")
    base = result.extra["base_mean"]
    intf = result.extra["intf_mean"]
    ios = result.extra["ios_mean"]

    # Near-base latency: most of the interference is gone.
    assert ios < base * 1.18
    # And clearly better than both the interfered case and FreeMarket's
    # typical level (see fig5/fig9 for the cross-policy comparison).
    assert ios < intf - 60.0

    # The congestion price drove the 2MB VM's cap down dynamically.
    values = dict((r[0], r[1]) for r in result.rows)
    assert values["2MB-VM cap (min)"] <= 20
