"""Figure 8: FreeMarket and IOShares on non-interference cases.

Paper: 'the values are almost equal to the Base values.  This
highlights two aspects of ResEx.  One, ResEx can not only detect
interference for a VM but also back off when there isn't any...  Two,
ResEx adapts to the I/O performed by the VMs to not penalize VMs if
they are doing the same amount of I/O.'
"""


def test_fig8_no_interference(run_figure):
    result = run_figure("fig8")
    base = result.extra["Base-64KB"]

    # A slow (10 req/s) 2MB neighbour is not penalized into visibility:
    # latencies stay near base under both policies.
    assert result.extra["FM-64KB-2MB-NoIntf"] < base * 1.15
    assert result.extra["IOS-64KB-2MB-NoIntf"] < base * 1.15

    # Two equal 64KB VMs share fairly; neither policy makes the managed
    # case dramatically worse than the unmanaged equal-share level, and
    # the result stays far below the 2MB-interferer level (~325 us).
    assert result.extra["FM-64KB-64KB"] < 300.0
    assert result.extra["IOS-64KB-64KB"] < 300.0
