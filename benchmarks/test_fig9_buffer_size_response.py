"""Figure 9: FreeMarket vs IOShares across interferer buffer sizes.

Paper: 'IOShares outperforms FreeMarket by maintaining the average
latency very close to the base value.  FreeMarket does not limit the
latency since it does not have access to that information.'
"""


def test_fig9_buffer_size_response(run_figure):
    result = run_figure("fig9")
    base = result.extra["base"]

    for buf_label in ("128KB", "256KB", "512KB", "1MB"):
        entry = result.extra[buf_label]
        # IOShares beats FreeMarket at every interfering buffer size...
        assert entry["ioshares"] <= entry["freemarket"] + 2.0, buf_label
        # ...and stays close to the base value.
        assert entry["ioshares"] < base * 1.22, buf_label

    # For the largest interferers the gap is decisive.
    big = result.extra["1MB"]
    assert big["freemarket"] - big["ioshares"] > 15.0
