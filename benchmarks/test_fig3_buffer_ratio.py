"""Figure 3: interferer buffer ratio with cap = 100/ratio.

Paper: with the interfering VM's CPU cap set from the buffer ratio,
'the latencies experienced by the reporting VM do not change between
all the instances' — i.e. the cap has a direct relationship with the
buffer ratio and the induced I/O latency.
"""

import numpy as np


def test_fig3_buffer_ratio(run_figure):
    result = run_figure("fig3")
    totals = result.extra["totals"]

    # Ratio-capped configurations (ratio >= 2) land in a narrow band.
    capped = [totals[r] for r in (32, 16, 8, 4, 2)]
    assert max(capped) - min(capped) < 0.12 * float(np.mean(capped))

    # And every configuration stays far below the uncapped-2MB level
    # (~325 us): equalized interference, not unchecked interference.
    assert max(capped) < 280.0
