"""Headline claim (abstract): 'ResEx can reduce the latency
interference by as much as 30% in some cases.'"""


def test_headline_claim(run_figure):
    result = run_figure("headline")
    reduction = result.extra["reduction_pct"]
    # Interference reduction in the canonical 64KB-vs-2MB scenario.
    assert reduction > 22.0
    assert reduction < 45.0  # sanity: not too good to be true
