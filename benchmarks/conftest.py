"""Shared bench fixtures: run a figure experiment once, save its output.

Run with ``pytest benchmarks/ --benchmark-only``.  Each bench executes
the corresponding figure experiment exactly once (they are deterministic
simulations — repetition adds nothing), records the wall time through
pytest-benchmark, prints the reproduced figure, and archives the text
under ``benchmarks/results/``.

Set ``REPRO_SCALE=full`` for longer simulations closer to the paper's
run lengths.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def run_figure(benchmark, capsys):
    """Run ``ALL_FIGURES[name]`` once under pytest-benchmark."""

    def _run(name: str):
        from repro.experiments import ALL_FIGURES

        result = benchmark.pedantic(
            ALL_FIGURES[name], rounds=1, iterations=1, warmup_rounds=0
        )
        text = result.render()
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print(f"\n{text}\n")
        return result

    return _run
