"""Seed-replication robustness: the headline result is not a lucky seed.

Runs the base / interfered / IOShares triplet across multiple seeds and
asserts the orderings and the ~30% reduction hold with confidence
intervals, not just pointwise.
"""

import pathlib


from repro.analysis import interference_reduction_pct, render_table
from repro.benchex import INTERFERER_2MB
from repro.experiments.multiseed import replicate_comparison
from repro.resex import IOShares

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
SEEDS = [3, 7, 11]


def test_robustness_across_seeds(benchmark, capsys):
    def run():
        return replicate_comparison(
            SEEDS,
            {
                "base": dict(sim_s=0.8),
                "interfered": dict(interferer=INTERFERER_2MB, sim_s=0.8),
                "ioshares": dict(
                    interferer=INTERFERER_2MB, policy=IOShares(), sim_s=1.2
                ),
            },
        )
    reps = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)

    rows = [
        [label, r.mean, r.ci95_halfwidth(), r.minimum, r.maximum]
        for label, r in reps.items()
    ]
    text = render_table(
        ["configuration", "mean (us)", "95% CI ±", "min", "max"],
        rows,
        title=f"Seed replication (seeds {SEEDS})",
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "robustness_seeds.txt").write_text(text + "\n")
    with capsys.disabled():
        print(f"\n{text}\n")

    base, intf, ios = reps["base"], reps["interfered"], reps["ioshares"]
    # The ordering holds in every replication, not just on average.
    assert intf.minimum > base.maximum + 50.0
    assert ios.maximum < intf.minimum - 50.0
    # Base is rock stable across seeds.
    assert base.std < 2.0
    # The headline reduction holds for the worst seed pairing.
    worst_reduction = interference_reduction_pct(intf.minimum, ios.maximum)
    assert worst_reduction > 20.0
