"""CI perf smoke: scaled-down fast-path workloads under pytest-benchmark.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/perf -q --benchmark-only \
        --benchmark-json=bench.json
    python tools/check_perf.py bench.json benchmarks/perf/baseline.json

The workloads are the ``repro bench`` suite (see :mod:`repro.bench`)
shrunk so the whole smoke finishes in well under a minute; the
comparison against the committed baseline is done by
``tools/check_perf.py``, which normalizes for host speed with a
calibration loop and fails on >25% normalized regression.  Absolute
times in ``baseline.json`` are *not* meaningful across hosts — only
the calibration-normalized ratio is.
"""

from __future__ import annotations

import functools

import pytest

from repro import bench

#: name -> (callable, pedantic rounds).  Sizes chosen so each workload
#: runs a few hundred ms: long enough to dominate timer noise, short
#: enough for a smoke job.
SMOKE_WORKLOADS = {
    "headline_managed": (functools.partial(bench.headline_managed, sim_s=0.1), 2),
    "chaos_linkflap": (functools.partial(bench.chaos_linkflap, sim_s=0.5), 2),
    "kernel_timeout_ping": (
        functools.partial(bench.kernel_timeout_ping, n=100_000),
        3,
    ),
    "fabric_churn": (functools.partial(bench.fabric_churn, n=800), 2),
    "telemetry_emit": (functools.partial(bench.telemetry_emit, n=100_000), 3),
}


@pytest.mark.parametrize("name", sorted(SMOKE_WORKLOADS))
def test_perf_smoke(benchmark, name):
    fn, rounds = SMOKE_WORKLOADS[name]
    meta = benchmark.pedantic(fn, rounds=rounds, iterations=1, warmup_rounds=0)
    # Sanity: the workload actually did its work (deterministic sims).
    assert meta, f"workload {name} returned no metadata"
